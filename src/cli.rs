//! Library half of the `mhbc` command-line tool: argument parsing and
//! command execution, kept binary-free so the logic is unit-testable.

use mhbc_core::planner::{plan_single_view, MuSource};
use mhbc_core::{pipeline, JointSpaceConfig, PrefetchConfig, SingleSpaceConfig};
use mhbc_graph::reduce::{reduce, ReduceLevel, ReducedGraph};
use mhbc_graph::{algo, io, CsrGraph, Vertex};
use mhbc_spd::{KernelMode, SpdView};
use std::io::BufRead;

/// The `--preprocess` argument: a fixed [`ReduceLevel`], or `auto` — build
/// the strongest applicable reduction, then *discard* it when the measured
/// work ratio says an SPD pass barely shrank (an empty reduction still
/// taxes the sampler with multiplicity bookkeeping and a second CSR in
/// cache, the `ws`/`grid` regression in `BENCH_preproc.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreprocessChoice {
    /// `off`, `prune`, or `full` — exactly as requested.
    Level(ReduceLevel),
    /// Build `full` (`prune` on weighted graphs), keep only if it pays.
    Auto,
}

/// Minimum measured work ratio (`(n + m) / (n_H + m_H)`) at which
/// `--preprocess auto` keeps the reduction. Below it the per-pass saving
/// cannot recoup the reduced-kernel overheads on structureless graphs
/// (measured at 0.96–0.98x sampler throughput on `ws`/`grid`).
const AUTO_MIN_WORK_RATIO: f64 = 1.05;

impl PreprocessChoice {
    /// Parses `off | prune | full | auto`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PreprocessChoice::Auto),
            other => ReduceLevel::parse(other).map(PreprocessChoice::Level),
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            PreprocessChoice::Level(l) => l.as_str(),
            PreprocessChoice::Auto => "auto",
        }
    }
}

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Estimate BC of one vertex: `estimate <edge-list> <vertex>`.
    Estimate {
        path: String,
        vertex: Vertex,
        iterations: u64,
        seed: u64,
        exact: bool,
        threads: usize,
        prefetch_depth: u64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
    },
    /// Relative ranking of several vertices: `rank <edge-list> <v1,v2,...>`.
    Rank {
        path: String,
        vertices: Vec<Vertex>,
        iterations: u64,
        seed: u64,
        threads: usize,
        prefetch_depth: u64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
    },
    /// Plan an (epsilon, delta) budget: `plan <edge-list> <vertex> <eps> <delta>`.
    Plan {
        path: String,
        vertex: Vertex,
        epsilon: f64,
        delta: f64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
    },
}

/// CLI usage string.
pub const USAGE: &str = "usage:
  mhbc estimate <edge-list> <vertex> [--iters N] [--seed S] [--exact] [--threads T] [--prefetch K] [--preprocess L] [--kernel M]
  mhbc rank     <edge-list> <v1,v2,...> [--iters N] [--seed S] [--threads T] [--prefetch K] [--preprocess L] [--kernel M]
  mhbc plan     <edge-list> <vertex> <epsilon> <delta> [--preprocess L] [--kernel M]

Edge lists are whitespace-separated `u v [w]` lines; `#`/`%` comments allowed.
--threads T      total density-evaluation threads (default 1 = sequential;
                 T >= 2 enables the speculative prefetch pipeline — results
                 are bit-identical to --threads 1).
--prefetch K     speculation window: how many proposals ahead the prefetch
                 workers may evaluate (default 1024).
--preprocess L   graph reduction before sampling: off (default), prune
                 (degree-1 pruning with exact corrections), full (pruning
                 + twin collapsing + cache relabelling), or auto (build the
                 reduction, keep it only when the measured work ratio pays).
                 Estimates stay in original vertex ids; `full` requires an
                 unweighted graph.
--kernel M       SPD forward-pass strategy: auto (default), topdown, or
                 hybrid (direction-optimizing top-down/bottom-up BFS). All
                 modes produce bit-identical estimates; this is purely a
                 performance knob.";

/// Parses `args` (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut iterations = 10_000u64;
    let mut seed = 42u64;
    let mut exact = false;
    let mut threads = 1usize;
    let mut prefetch_depth = PrefetchConfig::DEFAULT_DEPTH;
    let mut preprocess = PreprocessChoice::Level(ReduceLevel::Off);
    let mut kernel = KernelMode::Auto;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --iters".to_string())?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --seed".to_string())?;
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --threads".to_string())?;
            }
            "--prefetch" => {
                i += 1;
                prefetch_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k > 0)
                    .ok_or_else(|| "missing/invalid value for --prefetch".to_string())?;
            }
            "--preprocess" => {
                i += 1;
                preprocess =
                    args.get(i).and_then(|s| PreprocessChoice::parse(s)).ok_or_else(|| {
                        "missing/invalid value for --preprocess (off|prune|full|auto)".to_string()
                    })?;
            }
            "--kernel" => {
                i += 1;
                kernel = args.get(i).and_then(|s| KernelMode::parse(s)).ok_or_else(|| {
                    "missing/invalid value for --kernel (auto|topdown|hybrid)".to_string()
                })?;
            }
            "--exact" => exact = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => pos.push(other),
        }
        i += 1;
    }
    let parse_vertex = |s: &str| -> Result<Vertex, String> {
        s.parse().map_err(|_| format!("invalid vertex id `{s}`"))
    };
    match pos.as_slice() {
        ["estimate", path, vertex] => Ok(Command::Estimate {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            iterations,
            seed,
            exact,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
        }),
        ["rank", path, list] => {
            let vertices = list.split(',').map(parse_vertex).collect::<Result<Vec<_>, _>>()?;
            if vertices.len() < 2 {
                return Err("rank needs at least two comma-separated vertices".into());
            }
            Ok(Command::Rank {
                path: path.to_string(),
                vertices,
                iterations,
                seed,
                threads,
                prefetch_depth,
                preprocess,
                kernel,
            })
        }
        ["plan", path, vertex, eps, delta] => Ok(Command::Plan {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            epsilon: eps.parse().map_err(|_| format!("invalid epsilon `{eps}`"))?,
            delta: delta.parse().map_err(|_| format!("invalid delta `{delta}`"))?,
            preprocess,
            kernel,
        }),
        _ => Err(USAGE.to_string()),
    }
}

/// The outcome of resolving a `--preprocess` choice against a graph.
struct Preprocess {
    /// The reduction that was *built* (also present when auto discarded it
    /// for sampling — its exact closed forms for pruned probes remain
    /// valid and free either way).
    built: Option<ReducedGraph>,
    /// Whether the sampler should evaluate through `built`.
    keep: bool,
    /// Human-readable auto decision, when one was made.
    note: Option<String>,
}

impl Preprocess {
    /// The reduction the sampler should use, if any.
    fn sampling(&self) -> Option<&ReducedGraph> {
        if self.keep {
            self.built.as_ref()
        } else {
            None
        }
    }

    /// Exact closed-form BC of `r` when the *built* reduction pruned it —
    /// consulted before the auto-discard decision, so a pendant probe gets
    /// its free answer even when the reduction does not pay for sampling.
    fn exact_pruned_bc(&self, r: Vertex) -> Option<f64> {
        self.built.as_ref().and_then(|red| red.exact_pruned_bc(r))
    }
}

/// Builds the reduction for a preprocess choice (none for `off`), turning
/// build-time refusals (twin collapsing on a weighted graph) into readable
/// CLI errors. For [`PreprocessChoice::Auto`], builds the strongest
/// applicable level and marks it kept only when the measured work ratio
/// clears [`AUTO_MIN_WORK_RATIO`].
fn build_reduction(g: &CsrGraph, choice: PreprocessChoice) -> Result<Preprocess, String> {
    match choice {
        PreprocessChoice::Level(ReduceLevel::Off) => {
            Ok(Preprocess { built: None, keep: false, note: None })
        }
        PreprocessChoice::Level(level) => reduce(g, level)
            .map(|red| Preprocess { built: Some(red), keep: true, note: None })
            .map_err(|e| format!("--preprocess {}: {e}", level.as_str())),
        PreprocessChoice::Auto => {
            // Full collapsing refuses weighted graphs; pruning is
            // weight-agnostic, so auto degrades rather than erroring.
            let level = if g.is_weighted() { ReduceLevel::Prune } else { ReduceLevel::Full };
            let red = reduce(g, level).map_err(|e| format!("--preprocess auto: {e}"))?;
            let ratio = red.stats().work_ratio();
            let keep = ratio >= AUTO_MIN_WORK_RATIO;
            let note = if keep {
                format!(
                    "preprocess auto: kept {} (work ratio {ratio:.2}x >= {AUTO_MIN_WORK_RATIO}x)",
                    level.as_str()
                )
            } else {
                format!(
                    "preprocess auto: discarded {} for sampling (work ratio {ratio:.2}x < \
                     {AUTO_MIN_WORK_RATIO}x — an empty reduction would only tax the sampler)",
                    level.as_str()
                )
            };
            Ok(Preprocess { built: Some(red), keep, note: Some(note) })
        }
    }
}

/// One human-readable line summarising what the reduction did.
fn preprocess_line(red: &ReducedGraph) -> String {
    let s = red.stats();
    format!(
        "preprocess {}: {} -> {} vertices, {} -> {} edges ({} pruned, {} collapsed; \
         SPD pass {:.2}x smaller)",
        red.level().as_str(),
        s.orig_vertices,
        s.reduced_vertices,
        s.orig_edges,
        s.reduced_edges,
        s.pruned_vertices,
        s.collapsed_vertices,
        s.work_ratio()
    )
}

/// Loads a graph and reduces it to its largest connected component
/// (reporting the reduction), returning the graph and the old-id map.
pub fn load_graph<R: BufRead>(reader: R) -> Result<(CsrGraph, Vec<Vertex>), String> {
    let g = io::read_edge_list(reader).map_err(|e| e.to_string())?;
    let n_before = g.num_vertices();
    let (lcc, map) = algo::largest_component(&g);
    if lcc.num_vertices() < n_before {
        eprintln!(
            "note: using the largest connected component ({} of {} vertices)",
            lcc.num_vertices(),
            n_before
        );
    }
    Ok((lcc, map))
}

/// Executes a command against an already-loaded graph; returns printable
/// output lines. `map` translates internal ids back to input ids.
pub fn execute(cmd: &Command, g: &CsrGraph, map: &[Vertex]) -> Result<Vec<String>, String> {
    // Translate an input vertex id to the internal (LCC-relabelled) id.
    let internal = |input: Vertex| -> Result<Vertex, String> {
        map.iter()
            .position(|&old| old == input)
            .map(|i| i as Vertex)
            .ok_or_else(|| format!("vertex {input} is not in the largest component"))
    };
    match cmd {
        Command::Estimate {
            vertex,
            iterations,
            seed,
            exact,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
            ..
        } => {
            let r = internal(*vertex)?;
            let prep = build_reduction(g, *preprocess)?;
            let mut out = vec![format!("graph: {g}")];
            out.extend(prep.note.clone());
            if let Some(red) = prep.sampling() {
                out.push(preprocess_line(red));
            }
            if let Some(bc) = prep.exact_pruned_bc(r) {
                // The probe sits in a pruned pendant tree: its exact BC
                // fell out of the pruning corrections — no chain needed,
                // even when auto discarded the reduction for sampling.
                out.push(format!(
                    "BC({vertex}) = {bc:.6} (exact: vertex was pruned into a pendant \
                     tree, so its betweenness is known in closed form)"
                ));
                return Ok(out);
            }
            let view = SpdView::from_option(g, prep.sampling()).with_kernel(*kernel);
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let est = pipeline::run_single_view(
                view,
                r,
                &SingleSpaceConfig::new(*iterations, *seed),
                &prefetch,
            )
            .map_err(|e| e.to_string())?;
            out.push(format!(
                "BC({vertex}) ~ {:.6} (Eq 7) | {:.6} (corrected, recommended)",
                est.bc, est.bc_corrected
            ));
            out.push(format!(
                "iterations {} | acceptance {:.3} | SPD passes {} | threads {} | kernel {}",
                est.iterations,
                est.acceptance_rate,
                est.spd_passes,
                (*threads).max(1),
                kernel.as_str()
            ));
            if *exact {
                let truth = mhbc_spd::exact_betweenness_of(g, r);
                out.push(format!("exact (Brandes): {truth:.6}"));
            }
            Ok(out)
        }
        Command::Rank {
            vertices,
            iterations,
            seed,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
            ..
        } => {
            let probes = vertices.iter().map(|&v| internal(v)).collect::<Result<Vec<_>, _>>()?;
            let prep = build_reduction(g, *preprocess)?;
            if let Some(red) = prep.sampling() {
                for (&input, &p) in vertices.iter().zip(&probes) {
                    if !red.is_retained(p) {
                        return Err(format!(
                            "vertex {input} was pruned into a pendant tree at --preprocess {}; \
                             ranking needs retained probes — its exact BC is {:.6}, or rerun \
                             with --preprocess off",
                            preprocess.as_str(),
                            red.exact_pruned_bc(p).expect("pruned vertex has closed form"),
                        ));
                    }
                }
            }
            let view = SpdView::from_option(g, prep.sampling()).with_kernel(*kernel);
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let est = pipeline::run_joint_view(
                view,
                &probes,
                &JointSpaceConfig::new(*iterations, *seed),
                &prefetch,
            )
            .map_err(|e| e.to_string())?;
            let mut ranked: Vec<(Vertex, f64)> =
                vertices.iter().enumerate().map(|(i, &v)| (v, est.ratio(i, 0))).collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let mut out: Vec<String> = prep.note.clone().into_iter().collect();
            out.push(format!(
                "ranking by betweenness ratio vs vertex {} ({} iterations):",
                vertices[0], est.iterations
            ));
            for (v, ratio) in ranked {
                out.push(format!("  {v:>8}  ratio {ratio:.4}"));
            }
            Ok(out)
        }
        Command::Plan { vertex, epsilon, delta, preprocess, kernel, .. } => {
            let r = internal(*vertex)?;
            let prep = build_reduction(g, *preprocess)?;
            if let Some(bc) = prep.exact_pruned_bc(r) {
                // Known in closed form even when auto discarded the
                // reduction for sampling.
                let mut out: Vec<String> = prep.note.clone().into_iter().collect();
                if let Some(red) = prep.sampling() {
                    out.push(preprocess_line(red));
                }
                out.push(format!(
                    "BC({vertex}) = {bc:.6} exactly (pruned pendant vertex): \
                     0 iterations needed at this preprocess level"
                ));
                return Ok(out);
            }
            // With a reduction, the exact mu(r) itself is computed through
            // it (one reduced pass per distinct dependency row).
            let plan = plan_single_view(
                SpdView::from_option(g, prep.sampling()).with_kernel(*kernel),
                r,
                *epsilon,
                *delta,
                MuSource::Exact { threads: 0 },
            )
            .map_err(|e| e.to_string())?;
            let mut out: Vec<String> = prep.note.clone().into_iter().collect();
            out.extend([
                format!("mu({vertex}) = {:.3}", plan.mu),
                format!(
                    "iterations for |err| <= {} with prob >= {}: {}",
                    plan.epsilon,
                    1.0 - plan.delta,
                    plan.iterations
                ),
            ]);
            if let Some(red) = prep.sampling() {
                // mu(r) — and therefore the iteration count — is invariant
                // under preprocessing (densities are mapped exactly); only
                // the per-iteration SPD cost shrinks.
                out.push(preprocess_line(red));
                out.push(format!(
                    "assumed reduction ratio: each of the {} iterations costs one SPD pass \
                     over the reduced graph — {:.2}x less work than an unreduced pass",
                    plan.iterations,
                    red.stats().work_ratio()
                ));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_estimate_with_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--iters", "99", "--exact"])).unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 99,
                seed: 42,
                exact: true,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
            }
        );
    }

    #[test]
    fn parses_threads_and_prefetch_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--threads", "4", "--prefetch", "64"]))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 10_000,
                seed: 42,
                exact: false,
                threads: 4,
                prefetch_depth: 64,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
            }
        );
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--threads"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--prefetch", "0"])).is_err());
    }

    #[test]
    fn parses_rank_and_plan() {
        let cmd = parse(&strs(&["rank", "g.txt", "1,2,3", "--seed", "7"])).unwrap();
        assert_eq!(
            cmd,
            Command::Rank {
                path: "g.txt".into(),
                vertices: vec![1, 2, 3],
                iterations: 10_000,
                seed: 7,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
            }
        );
        let cmd =
            parse(&strs(&["plan", "g.txt", "4", "0.05", "0.1", "--preprocess", "full"])).unwrap();
        assert_eq!(
            cmd,
            Command::Plan {
                path: "g.txt".into(),
                vertex: 4,
                epsilon: 0.05,
                delta: 0.1,
                preprocess: PreprocessChoice::Level(ReduceLevel::Full),
                kernel: KernelMode::Auto,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&strs(&["estimate", "g.txt"])).is_err());
        assert!(parse(&strs(&["rank", "g.txt", "1"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "x"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--bogus"])).is_err());
        assert!(parse(&strs(&["plan", "g.txt", "1", "abc", "0.1"])).is_err());
    }

    #[test]
    fn load_reduces_to_largest_component() {
        let text = "0 1\n1 2\n2 0\n3 4\n";
        let (g, map) = load_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn estimate_command_end_to_end() {
        // Barbell written as an edge list; estimate the bridge vertex.
        let mut text = String::new();
        let g = mhbc_graph::generators::barbell(5, 1);
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 5_000,
            seed: 1,
            exact: true,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("BC(5)")));
        assert!(out.iter().any(|l| l.contains("exact")));
    }

    #[test]
    fn threaded_estimate_matches_sequential_output() {
        let g = mhbc_graph::generators::barbell(5, 1);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let mk = |threads| Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 2_000,
            seed: 9,
            exact: false,
            threads,
            prefetch_depth: 32,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
        };
        let seq = execute(&mk(1), &lcc, &map).unwrap();
        let par = execute(&mk(3), &lcc, &map).unwrap();
        // Identical estimate line; the stats line differs only in the
        // reported thread count.
        assert_eq!(seq[1], par[1]);
        assert!(par[2].contains("threads 3"));
    }

    #[test]
    fn rank_command_orders_by_ratio() {
        let g = mhbc_graph::generators::barbell(6, 3);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![6, 7],
            iterations: 20_000,
            seed: 3,
            threads: 2,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Full),
            kernel: KernelMode::Auto,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        // The middle path vertex 7 carries more pairs than 6.
        let pos7 = out.iter().position(|l| l.trim_start().starts_with('7')).unwrap();
        let pos6 = out.iter().position(|l| l.trim_start().starts_with('6')).unwrap();
        assert!(pos7 < pos6, "vertex 7 should rank above 6: {out:?}");
    }

    fn edge_list_text(g: &CsrGraph) -> String {
        let mut text = String::new();
        for (u, v, w) in g.edges() {
            if g.is_weighted() {
                text.push_str(&format!("{u} {v} {w}\n"));
            } else {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
        text
    }

    #[test]
    fn rejects_bad_preprocess_value() {
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--preprocess", "max"]))
            .unwrap_err()
            .contains("off|prune|full|auto"));
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--preprocess"])).is_err());
    }

    #[test]
    fn parses_kernel_and_auto_preprocess_flags() {
        let cmd =
            parse(&strs(&["estimate", "g.txt", "3", "--kernel", "hybrid", "--preprocess", "auto"]))
                .unwrap();
        match cmd {
            Command::Estimate { kernel, preprocess, .. } => {
                assert_eq!(kernel, KernelMode::Hybrid);
                assert_eq!(preprocess, PreprocessChoice::Auto);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--kernel", "bottomup"]))
            .unwrap_err()
            .contains("auto|topdown|hybrid"));
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--kernel"])).is_err());
    }

    #[test]
    fn kernel_modes_produce_identical_estimates() {
        let g = mhbc_graph::generators::barbell(6, 2);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |kernel| Command::Estimate {
            path: String::new(),
            vertex: 6,
            iterations: 1_500,
            seed: 21,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel,
        };
        let auto = execute(&mk(KernelMode::Auto), &lcc, &map).unwrap();
        for kernel in [KernelMode::TopDown, KernelMode::Hybrid] {
            let out = execute(&mk(kernel), &lcc, &map).unwrap();
            // Identical estimate line; the stats line names the mode.
            assert_eq!(auto[1], out[1], "{kernel:?}");
            assert!(out[2].contains(&format!("kernel {}", kernel.as_str())), "{out:?}");
        }
    }

    #[test]
    fn auto_preprocess_keeps_paying_reductions_and_discards_empty_ones() {
        // Lollipop: heavy pendant mass — auto keeps the full reduction.
        let g = mhbc_graph::generators::lollipop(6, 5);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex| Command::Estimate {
            path: String::new(),
            vertex,
            iterations: 1_000,
            seed: 3,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Auto,
            kernel: KernelMode::Auto,
        };
        let out = execute(&mk(0), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("preprocess auto: kept full")), "{out:?}");
        assert!(out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");

        // A cycle is irreducible: auto must discard the empty reduction.
        let g = mhbc_graph::generators::cycle(12);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let out = execute(&mk(0), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("preprocess auto: discarded full")), "{out:?}");
        assert!(!out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("BC(0) ~")), "{out:?}");
    }

    #[test]
    fn auto_preprocess_keeps_closed_forms_for_pruned_probes_even_when_discarded() {
        // One pendant on a big cycle: the work ratio is too small to keep
        // the reduction for sampling, but the pendant probe's exact BC is
        // still a free by-product of the build — no chain may run.
        let mut edges: Vec<(u32, u32)> = (0..40u32).map(|v| (v, (v + 1) % 40)).collect();
        edges.push((0, 40)); // the pendant
        let g = CsrGraph::from_edges(41, &edges).unwrap();
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 40,
            iterations: 500,
            seed: 7,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Auto,
            kernel: KernelMode::Auto,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("discarded full for sampling")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("exact: vertex was pruned")), "{out:?}");
        assert!(!out.iter().any(|l| l.contains("BC(40) ~")), "no sampling: {out:?}");
    }

    #[test]
    fn preprocessed_estimate_reports_reduction_and_closed_forms() {
        // Lollipop: the pendant path prunes away entirely.
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex, preprocess| Command::Estimate {
            path: String::new(),
            vertex,
            iterations: 3_000,
            seed: 5,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess,
            kernel: KernelMode::Auto,
        };
        // Retained probe: sampled estimate, with a preprocess summary line.
        let out = execute(&mk(0, PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("BC(0) ~")), "{out:?}");
        // Pruned probe: exact closed form, no sampling.
        let out = execute(&mk(8, PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("exact: vertex was pruned")), "{out:?}");
        let exact = mhbc_spd::exact_betweenness_of(&lcc, 8);
        assert!(out.iter().any(|l| l.contains(&format!("{exact:.6}"))), "{out:?}");
    }

    #[test]
    fn weighted_graphs_refuse_full_preprocess_but_allow_prune() {
        let g = mhbc_graph::generators::lollipop(5, 2).map_weights(|_, _| 2.5).unwrap();
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |preprocess| Command::Estimate {
            path: String::new(),
            vertex: 0,
            iterations: 500,
            seed: 1,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess,
            kernel: KernelMode::Auto,
        };
        let err = execute(&mk(PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap_err();
        assert!(err.contains("--preprocess full"), "{err}");
        assert!(err.contains("unweighted"), "{err}");
        assert!(execute(&mk(PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).is_ok());
    }

    #[test]
    fn preprocessed_rank_rejects_pruned_probes_with_guidance() {
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![0, 8],
            iterations: 100,
            seed: 1,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Prune),
            kernel: KernelMode::Auto,
        };
        let err = execute(&cmd, &lcc, &map).unwrap_err();
        assert!(err.contains("vertex 8"), "{err}");
        assert!(err.contains("--preprocess off"), "{err}");
    }

    #[test]
    fn plan_reports_the_assumed_reduction_ratio() {
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex, preprocess| Command::Plan {
            path: String::new(),
            vertex,
            epsilon: 0.05,
            delta: 0.1,
            preprocess,
            kernel: KernelMode::Auto,
        };
        // Vertex 5 is the path's clique attachment: positive betweenness.
        let out = execute(&mk(5, PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("assumed reduction ratio")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("less work than an unreduced pass")), "{out:?}");
        // Without preprocessing there is no ratio line.
        let out = execute(&mk(5, PreprocessChoice::Level(ReduceLevel::Off)), &lcc, &map).unwrap();
        assert!(!out.iter().any(|l| l.contains("reduction ratio")), "{out:?}");
        // A pruned probe needs no iterations at all.
        let out = execute(&mk(8, PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("0 iterations needed")), "{out:?}");
    }

    #[test]
    fn missing_vertex_reported() {
        let (g, map) = load_graph(Cursor::new("0 1\n1 2\n")).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 99,
            iterations: 10,
            seed: 0,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
        };
        assert!(execute(&cmd, &g, &map).unwrap_err().contains("99"));
    }
}
