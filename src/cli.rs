//! Library half of the `mhbc` command-line tool: argument parsing and
//! command execution, kept binary-free so the logic is unit-testable.

use mhbc_core::checkpoint::{self, CheckpointKind};
use mhbc_core::planner::{plan_single_view, refit_plan, MuSource};
use mhbc_core::schedule::{run_probe_schedule, ScheduleConfig};
use mhbc_core::{
    pipeline, AdaptiveReport, EngineConfig, JointSpaceConfig, JointSpaceSampler, PrefetchConfig,
    SingleSpaceConfig, StopReason, StoppingRule,
};
use mhbc_graph::reduce::{reduce, ReduceLevel, ReducedGraph};
use mhbc_graph::{algo, io, CsrGraph, Vertex};
use mhbc_spd::{KernelMode, SpdView};
use std::io::BufRead;

/// The `--preprocess` argument: a fixed [`ReduceLevel`], or `auto` — build
/// the strongest applicable reduction, then *discard* it when the measured
/// work ratio says an SPD pass barely shrank (an empty reduction still
/// taxes the sampler with multiplicity bookkeeping and a second CSR in
/// cache, the `ws`/`grid` regression in `BENCH_preproc.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreprocessChoice {
    /// `off`, `prune`, or `full` — exactly as requested.
    Level(ReduceLevel),
    /// Build `full` (`prune` on weighted graphs), keep only if it pays.
    Auto,
}

/// Minimum measured work ratio (`(n + m) / (n_H + m_H)`) at which
/// `--preprocess auto` keeps the reduction. Below it the per-pass saving
/// cannot recoup the reduced-kernel overheads on structureless graphs
/// (measured at 0.96–0.98x sampler throughput on `ws`/`grid`).
const AUTO_MIN_WORK_RATIO: f64 = 1.05;

impl PreprocessChoice {
    /// Parses `off | prune | full | auto`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PreprocessChoice::Auto),
            other => ReduceLevel::parse(other).map(PreprocessChoice::Level),
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            PreprocessChoice::Level(l) => l.as_str(),
            PreprocessChoice::Auto => "auto",
        }
    }
}

/// Adaptive-estimation knobs shared by `estimate`, `rank`, and `resume`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveArgs {
    /// `--target-se`: stop when the estimate's confidence half-width drops
    /// to this value (`None` = fixed budget).
    pub target_se: Option<f64>,
    /// `--target-delta`: the confidence level's failure probability.
    pub target_delta: f64,
    /// `--segment`: iterations per engine segment.
    pub segment: u64,
    /// `--checkpoint`: write a resumable checkpoint here at every segment
    /// boundary.
    pub checkpoint: Option<String>,
}

impl Default for AdaptiveArgs {
    fn default() -> Self {
        AdaptiveArgs {
            target_se: None,
            target_delta: 0.05,
            segment: EngineConfig::DEFAULT_SEGMENT,
            checkpoint: None,
        }
    }
}

impl AdaptiveArgs {
    /// The stopping rule these arguments select.
    fn stopping(&self) -> StoppingRule {
        match self.target_se {
            None => StoppingRule::FixedIterations,
            Some(epsilon) => StoppingRule::TargetStderr { epsilon, delta: self.target_delta },
        }
    }

    fn engine(&self) -> EngineConfig {
        EngineConfig::adaptive(self.stopping()).with_segment(self.segment)
    }
}

/// Parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Estimate BC of one vertex: `estimate <edge-list> <vertex>`.
    Estimate {
        path: String,
        vertex: Vertex,
        iterations: u64,
        seed: u64,
        exact: bool,
        threads: usize,
        prefetch_depth: u64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
        adaptive: AdaptiveArgs,
    },
    /// Relative ranking of several vertices: `rank <edge-list> <v1,v2,...>`.
    Rank {
        path: String,
        vertices: Vec<Vertex>,
        iterations: u64,
        seed: u64,
        threads: usize,
        prefetch_depth: u64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
        adaptive: AdaptiveArgs,
    },
    /// Plan an (epsilon, delta) budget: `plan <edge-list> <vertex> <eps> <delta>`.
    Plan {
        path: String,
        vertex: Vertex,
        epsilon: f64,
        delta: f64,
        preprocess: PreprocessChoice,
        kernel: KernelMode,
    },
    /// Continue a checkpointed run: `resume <edge-list> <checkpoint>`.
    Resume {
        path: String,
        checkpoint_path: String,
        threads: usize,
        prefetch_depth: u64,
        kernel: KernelMode,
        /// Where to keep writing checkpoints (defaults to continuing over
        /// the checkpoint file being resumed).
        checkpoint: Option<String>,
    },
}

/// CLI usage string.
pub const USAGE: &str = "usage:
  mhbc estimate <edge-list> <vertex> [--iters N] [--seed S] [--exact] [--threads T] [--prefetch K] [--preprocess L] [--kernel M] [--target-se E] [--target-delta D] [--segment B] [--checkpoint F]
  mhbc rank     <edge-list> <v1,v2,...> [--iters N] [--seed S] [--threads T] [--prefetch K] [--preprocess L] [--kernel M] [--target-se E] [--target-delta D] [--segment B] [--checkpoint F]
  mhbc plan     <edge-list> <vertex> <epsilon> <delta> [--preprocess L] [--kernel M]
  mhbc resume   <edge-list> <checkpoint> [--threads T] [--prefetch K] [--kernel M] [--checkpoint F]

Edge lists are whitespace-separated `u v [w]` lines; `#`/`%` comments allowed.
--threads T      total density-evaluation threads (default 1 = sequential;
                 T >= 2 enables the speculative prefetch pipeline — results
                 are bit-identical to --threads 1).
--prefetch K     speculation window: how many proposals ahead the prefetch
                 workers may evaluate (default 1024).
--preprocess L   graph reduction before sampling: off (default), prune
                 (degree-1 pruning with exact corrections), full (pruning
                 + twin collapsing + cache relabelling), or auto (build the
                 reduction, keep it only when the measured work ratio pays).
                 Estimates stay in original vertex ids; `full` requires an
                 unweighted graph.
--kernel M       SPD forward-pass strategy: auto (default), topdown, or
                 hybrid (direction-optimizing top-down/bottom-up BFS). All
                 modes produce bit-identical estimates; this is purely a
                 performance knob.
--target-se E    adaptive stopping: run until the estimate's confidence
                 half-width drops to E (at confidence 1 - delta), instead
                 of spending the full --iters budget (--iters stays the
                 upper bound). `rank` with --target-se switches to per-probe
                 single-space estimation with widest-interval-first budget
                 scheduling.
--target-delta D confidence failure probability for --target-se
                 (default 0.05 = 95% intervals).
--segment B      engine segment length: iterations between diagnostics
                 updates, stopping decisions, and checkpoints (default 1024).
--checkpoint F   write a resumable checkpoint to F at every segment
                 boundary (estimate at any thread count; rank needs
                 --threads 1). `mhbc resume <edge-list> F` continues the
                 run bit-identically — same estimates, same stopping point,
                 as if it had never been interrupted.";

/// Parses `args` (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut iterations = 10_000u64;
    let mut seed = 42u64;
    let mut exact = false;
    let mut threads = 1usize;
    let mut prefetch_depth = PrefetchConfig::DEFAULT_DEPTH;
    let mut preprocess = PreprocessChoice::Level(ReduceLevel::Off);
    let mut kernel = KernelMode::Auto;
    let mut adaptive = AdaptiveArgs::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target-se" => {
                i += 1;
                adaptive.target_se = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&e: &f64| e > 0.0 && e.is_finite())
                        .ok_or_else(|| "missing/invalid value for --target-se".to_string())?,
                );
            }
            "--target-delta" => {
                i += 1;
                adaptive.target_delta = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&d: &f64| d > 0.0 && d < 1.0)
                    .ok_or_else(|| {
                        "missing/invalid value for --target-delta (need 0 < d < 1)".to_string()
                    })?;
            }
            "--segment" => {
                i += 1;
                adaptive.segment = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| b > 0)
                    .ok_or_else(|| "missing/invalid value for --segment".to_string())?;
            }
            "--checkpoint" => {
                i += 1;
                adaptive.checkpoint = Some(
                    args.get(i)
                        .filter(|s| !s.starts_with("--"))
                        .ok_or_else(|| "missing value for --checkpoint".to_string())?
                        .to_string(),
                );
            }
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --iters".to_string())?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --seed".to_string())?;
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "missing/invalid value for --threads".to_string())?;
            }
            "--prefetch" => {
                i += 1;
                prefetch_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k > 0)
                    .ok_or_else(|| "missing/invalid value for --prefetch".to_string())?;
            }
            "--preprocess" => {
                i += 1;
                preprocess =
                    args.get(i).and_then(|s| PreprocessChoice::parse(s)).ok_or_else(|| {
                        "missing/invalid value for --preprocess (off|prune|full|auto)".to_string()
                    })?;
            }
            "--kernel" => {
                i += 1;
                kernel = args.get(i).and_then(|s| KernelMode::parse(s)).ok_or_else(|| {
                    "missing/invalid value for --kernel (auto|topdown|hybrid)".to_string()
                })?;
            }
            "--exact" => exact = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => pos.push(other),
        }
        i += 1;
    }
    let parse_vertex = |s: &str| -> Result<Vertex, String> {
        s.parse().map_err(|_| format!("invalid vertex id `{s}`"))
    };
    match pos.as_slice() {
        ["estimate", path, vertex] => Ok(Command::Estimate {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            iterations,
            seed,
            exact,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
            adaptive,
        }),
        ["rank", path, list] => {
            let vertices = list.split(',').map(parse_vertex).collect::<Result<Vec<_>, _>>()?;
            if vertices.len() < 2 {
                return Err("rank needs at least two comma-separated vertices".into());
            }
            Ok(Command::Rank {
                path: path.to_string(),
                vertices,
                iterations,
                seed,
                threads,
                prefetch_depth,
                preprocess,
                kernel,
                adaptive,
            })
        }
        ["plan", path, vertex, eps, delta] => Ok(Command::Plan {
            path: path.to_string(),
            vertex: parse_vertex(vertex)?,
            epsilon: eps.parse().map_err(|_| format!("invalid epsilon `{eps}`"))?,
            delta: delta.parse().map_err(|_| format!("invalid delta `{delta}`"))?,
            preprocess,
            kernel,
        }),
        ["resume", path, ckpt] => Ok(Command::Resume {
            path: path.to_string(),
            checkpoint_path: ckpt.to_string(),
            threads,
            prefetch_depth,
            kernel,
            checkpoint: adaptive.checkpoint,
        }),
        _ => Err(USAGE.to_string()),
    }
}

/// The outcome of resolving a `--preprocess` choice against a graph.
struct Preprocess {
    /// The reduction that was *built* (also present when auto discarded it
    /// for sampling — its exact closed forms for pruned probes remain
    /// valid and free either way).
    built: Option<ReducedGraph>,
    /// Whether the sampler should evaluate through `built`.
    keep: bool,
    /// Human-readable auto decision, when one was made.
    note: Option<String>,
}

impl Preprocess {
    /// The reduction the sampler should use, if any.
    fn sampling(&self) -> Option<&ReducedGraph> {
        if self.keep {
            self.built.as_ref()
        } else {
            None
        }
    }

    /// Exact closed-form BC of `r` when the *built* reduction pruned it —
    /// consulted before the auto-discard decision, so a pendant probe gets
    /// its free answer even when the reduction does not pay for sampling.
    fn exact_pruned_bc(&self, r: Vertex) -> Option<f64> {
        self.built.as_ref().and_then(|red| red.exact_pruned_bc(r))
    }
}

/// Builds the reduction for a preprocess choice (none for `off`), turning
/// build-time refusals (twin collapsing on a weighted graph) into readable
/// CLI errors. For [`PreprocessChoice::Auto`], builds the strongest
/// applicable level and marks it kept only when the measured work ratio
/// clears [`AUTO_MIN_WORK_RATIO`].
fn build_reduction(g: &CsrGraph, choice: PreprocessChoice) -> Result<Preprocess, String> {
    match choice {
        PreprocessChoice::Level(ReduceLevel::Off) => {
            Ok(Preprocess { built: None, keep: false, note: None })
        }
        PreprocessChoice::Level(level) => reduce(g, level)
            .map(|red| Preprocess { built: Some(red), keep: true, note: None })
            .map_err(|e| format!("--preprocess {}: {e}", level.as_str())),
        PreprocessChoice::Auto => {
            // Full collapsing refuses weighted graphs; pruning is
            // weight-agnostic, so auto degrades rather than erroring.
            let level = if g.is_weighted() { ReduceLevel::Prune } else { ReduceLevel::Full };
            let red = reduce(g, level).map_err(|e| format!("--preprocess auto: {e}"))?;
            let ratio = red.stats().work_ratio();
            let keep = ratio >= AUTO_MIN_WORK_RATIO;
            let note = if keep {
                format!(
                    "preprocess auto: kept {} (work ratio {ratio:.2}x >= {AUTO_MIN_WORK_RATIO}x)",
                    level.as_str()
                )
            } else {
                format!(
                    "preprocess auto: discarded {} for sampling (work ratio {ratio:.2}x < \
                     {AUTO_MIN_WORK_RATIO}x — an empty reduction would only tax the sampler)",
                    level.as_str()
                )
            };
            Ok(Preprocess { built: Some(red), keep, note: Some(note) })
        }
    }
}

/// One human-readable line summarising what the reduction did.
fn preprocess_line(red: &ReducedGraph) -> String {
    let s = red.stats();
    format!(
        "preprocess {}: {} -> {} vertices, {} -> {} edges ({} pruned, {} collapsed; \
         SPD pass {:.2}x smaller)",
        red.level().as_str(),
        s.orig_vertices,
        s.reduced_vertices,
        s.orig_edges,
        s.reduced_edges,
        s.pruned_vertices,
        s.collapsed_vertices,
        s.work_ratio()
    )
}

/// Loads a graph and reduces it to its largest connected component
/// (reporting the reduction), returning the graph and the old-id map.
pub fn load_graph<R: BufRead>(reader: R) -> Result<(CsrGraph, Vec<Vertex>), String> {
    let g = io::read_edge_list(reader).map_err(|e| e.to_string())?;
    let n_before = g.num_vertices();
    let (lcc, map) = algo::largest_component(&g);
    if lcc.num_vertices() < n_before {
        eprintln!(
            "note: using the largest connected component ({} of {} vertices)",
            lcc.num_vertices(),
            n_before
        );
    }
    Ok((lcc, map))
}

/// A checkpoint-writing sink for the engine's segment boundaries. Writes
/// are atomic (temp file + rename), so a crash mid-write can never destroy
/// the previous recovery point — the one property a checkpoint file must
/// keep.
fn checkpoint_sink(path: &str) -> impl FnMut(Vec<u8>) -> Result<(), mhbc_core::CoreError> + '_ {
    move |bytes| {
        let io_err = |what: &str, e: std::io::Error| mhbc_core::CoreError::Checkpoint {
            reason: format!("cannot {what} checkpoint {path}: {e}"),
        };
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, bytes).map_err(|e| io_err("write", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err("replace", e))
    }
}

/// The engine's "plan vs. actual" line: budget vs. stopping point, the
/// observed-µ refit of the planner's Ineq 14 bound, and the diagnostics at
/// stop.
fn plan_vs_actual_line(report: &AdaptiveReport) -> String {
    let stopped = match report.reason {
        StopReason::TargetReached => "target reached",
        StopReason::BudgetExhausted => "budget exhausted",
    };
    let mut line = format!(
        "plan vs actual: budget {} | stopped at {} ({stopped}) | se {:.6} | ESS {:.0} | \
         tau {:.1} | geweke z {:.2}",
        report.budget, report.iterations, report.stderr, report.ess, report.tau, report.geweke_z
    );
    if let StoppingRule::TargetStderr { epsilon, delta } = report.stopping {
        if let Some(refit) = refit_plan(epsilon, delta, report) {
            line.push_str(&format!(
                " | refit mu {:.3} -> Ineq 14 budget {}",
                refit.mu, refit.iterations
            ));
        }
    }
    line
}

/// Executes a command against an already-loaded graph; returns printable
/// output lines. `map` translates internal ids back to input ids.
pub fn execute(cmd: &Command, g: &CsrGraph, map: &[Vertex]) -> Result<Vec<String>, String> {
    // Translate an input vertex id to the internal (LCC-relabelled) id.
    let internal = |input: Vertex| -> Result<Vertex, String> {
        map.iter()
            .position(|&old| old == input)
            .map(|i| i as Vertex)
            .ok_or_else(|| format!("vertex {input} is not in the largest component"))
    };
    // And back: internal id to input id (resume reads internal ids from the
    // checkpoint).
    let external = |r: Vertex| -> Vertex { map[r as usize] };
    match cmd {
        Command::Estimate {
            vertex,
            iterations,
            seed,
            exact,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
            adaptive,
            ..
        } => {
            let r = internal(*vertex)?;
            let prep = build_reduction(g, *preprocess)?;
            let mut out = vec![format!("graph: {g}")];
            out.extend(prep.note.clone());
            if let Some(red) = prep.sampling() {
                out.push(preprocess_line(red));
            }
            if let Some(bc) = prep.exact_pruned_bc(r) {
                // The probe sits in a pruned pendant tree: its exact BC
                // fell out of the pruning corrections — no chain needed,
                // even when auto discarded the reduction for sampling.
                out.push(format!(
                    "BC({vertex}) = {bc:.6} (exact: vertex was pruned into a pendant \
                     tree, so its betweenness is known in closed form)"
                ));
                return Ok(out);
            }
            let view = SpdView::from_option(g, prep.sampling()).with_kernel(*kernel);
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let mut sink = adaptive.checkpoint.as_deref().map(checkpoint_sink);
            let (est, report) = pipeline::run_single_view_adaptive(
                view,
                r,
                &SingleSpaceConfig::new(*iterations, *seed),
                adaptive.engine(),
                &prefetch,
                sink.as_mut().map(|s| s as &mut pipeline::CheckpointSink<'_>),
            )
            .map_err(|e| e.to_string())?;
            out.push(format!(
                "BC({vertex}) ~ {:.6} (Eq 7) | {:.6} (corrected, recommended)",
                est.bc, est.bc_corrected
            ));
            out.push(format!(
                "iterations {} | acceptance {:.3} | SPD passes {} | threads {} | kernel {}",
                est.iterations,
                est.acceptance_rate,
                est.spd_passes,
                (*threads).max(1),
                kernel.as_str()
            ));
            if adaptive.target_se.is_some() {
                out.push(plan_vs_actual_line(&report));
            }
            if let Some(path) = &adaptive.checkpoint {
                out.push(format!(
                    "checkpoint: {path} (resume with `mhbc resume <edge-list> {path}`)"
                ));
            }
            if *exact {
                let truth = mhbc_spd::exact_betweenness_of(g, r);
                out.push(format!("exact (Brandes): {truth:.6}"));
            }
            Ok(out)
        }
        Command::Rank {
            vertices,
            iterations,
            seed,
            threads,
            prefetch_depth,
            preprocess,
            kernel,
            adaptive,
            ..
        } => {
            let probes = vertices.iter().map(|&v| internal(v)).collect::<Result<Vec<_>, _>>()?;
            let prep = build_reduction(g, *preprocess)?;
            if let Some(red) = prep.sampling() {
                for (&input, &p) in vertices.iter().zip(&probes) {
                    if !red.is_retained(p) {
                        return Err(format!(
                            "vertex {input} was pruned into a pendant tree at --preprocess {}; \
                             ranking needs retained probes — its exact BC is {:.6}, or rerun \
                             with --preprocess off",
                            preprocess.as_str(),
                            red.exact_pruned_bc(p).expect("pruned vertex has closed form"),
                        ));
                    }
                }
            }
            let view = SpdView::from_option(g, prep.sampling()).with_kernel(*kernel);
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let mut out: Vec<String> = prep.note.clone().into_iter().collect();

            if let Some(epsilon) = adaptive.target_se {
                if adaptive.checkpoint.is_some() {
                    return Err("adaptive rank (--target-se) does not support --checkpoint; \
                                checkpoint individual probes via `estimate`, or drop --target-se"
                        .into());
                }
                // Adaptive rank: per-probe single-space engines sharing one
                // budget, reallocated toward the widest intervals.
                let budget = iterations.saturating_mul(probes.len() as u64);
                let cfg = ScheduleConfig {
                    budget,
                    segment: adaptive.segment,
                    target: StoppingRule::TargetStderr { epsilon, delta: adaptive.target_delta },
                    seed: *seed,
                };
                let sched = run_probe_schedule(view, &probes, cfg).map_err(|e| e.to_string())?;
                out.push(format!(
                    "adaptive ranking by estimated BC (target se {epsilon}, budget {budget}, \
                     spent {}, {} scheduling rounds):",
                    sched.spent, sched.rounds
                ));
                let mut ranked: Vec<(Vertex, &mhbc_core::schedule::ProbeOutcome)> =
                    vertices.iter().zip(&sched.probes).map(|(&v, o)| (v, o)).collect();
                ranked.sort_by(|a, b| {
                    b.1.estimate
                        .bc_corrected
                        .partial_cmp(&a.1.estimate.bc_corrected)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for (v, o) in ranked {
                    out.push(format!(
                        "  {v:>8}  BC ~ {:.6} +- {:.6}  ({} iters{})",
                        o.estimate.bc_corrected,
                        o.ci_halfwidth,
                        o.allocated,
                        if o.reached { "" } else { ", budget cut" }
                    ));
                }
                return Ok(out);
            }

            if adaptive.checkpoint.is_some() && prefetch.is_parallel() {
                return Err("checkpointing a rank run requires --threads 1 (the joint engine \
                     checkpoints sequentially; estimate checkpoints at any thread count)"
                    .into());
            }
            let est = if let Some(path) = &adaptive.checkpoint {
                let sampler = JointSpaceSampler::for_view(
                    view,
                    &probes,
                    JointSpaceConfig::new(*iterations, *seed),
                )
                .map_err(|e| e.to_string())?;
                let mut sink = checkpoint_sink(path);
                sampler
                    .into_engine(adaptive.engine())
                    .run_with(|e| sink(e.checkpoint()))
                    .map_err(|e| e.to_string())?
                    .0
            } else {
                pipeline::run_joint_view(
                    view,
                    &probes,
                    &JointSpaceConfig::new(*iterations, *seed),
                    &prefetch,
                )
                .map_err(|e| e.to_string())?
            };
            let mut ranked: Vec<(Vertex, f64)> =
                vertices.iter().enumerate().map(|(i, &v)| (v, est.ratio(i, 0))).collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            out.push(format!(
                "ranking by betweenness ratio vs vertex {} ({} iterations):",
                vertices[0], est.iterations
            ));
            for (v, ratio) in ranked {
                out.push(format!("  {v:>8}  ratio {ratio:.4}"));
            }
            Ok(out)
        }
        Command::Plan { vertex, epsilon, delta, preprocess, kernel, .. } => {
            let r = internal(*vertex)?;
            let prep = build_reduction(g, *preprocess)?;
            if let Some(bc) = prep.exact_pruned_bc(r) {
                // Known in closed form even when auto discarded the
                // reduction for sampling.
                let mut out: Vec<String> = prep.note.clone().into_iter().collect();
                if let Some(red) = prep.sampling() {
                    out.push(preprocess_line(red));
                }
                out.push(format!(
                    "BC({vertex}) = {bc:.6} exactly (pruned pendant vertex): \
                     0 iterations needed at this preprocess level"
                ));
                return Ok(out);
            }
            // With a reduction, the exact mu(r) itself is computed through
            // it (one reduced pass per distinct dependency row).
            let plan = plan_single_view(
                SpdView::from_option(g, prep.sampling()).with_kernel(*kernel),
                r,
                *epsilon,
                *delta,
                MuSource::Exact { threads: 0 },
            )
            .map_err(|e| e.to_string())?;
            let mut out: Vec<String> = prep.note.clone().into_iter().collect();
            out.extend([
                format!("mu({vertex}) = {:.3}", plan.mu),
                format!(
                    "iterations for |err| <= {} with prob >= {}: {}",
                    plan.epsilon,
                    1.0 - plan.delta,
                    plan.iterations
                ),
            ]);
            if let Some(red) = prep.sampling() {
                // mu(r) — and therefore the iteration count — is invariant
                // under preprocessing (densities are mapped exactly); only
                // the per-iteration SPD cost shrinks.
                out.push(preprocess_line(red));
                out.push(format!(
                    "assumed reduction ratio: each of the {} iterations costs one SPD pass \
                     over the reduced graph — {:.2}x less work than an unreduced pass",
                    plan.iterations,
                    red.stats().work_ratio()
                ));
            } else if prep.built.is_some() {
                // `--preprocess auto` built a reduction but discarded it:
                // the sampling runs on the unreduced graph, so the honest
                // ratio is 1.0 — not the ratio the discarded reduction
                // would have had.
                out.push("assumed reduction ratio: 1.0 (discarded)".to_string());
            }
            Ok(out)
        }
        Command::Resume {
            checkpoint_path, threads, prefetch_depth, kernel, checkpoint, ..
        } => {
            let bytes = std::fs::read(checkpoint_path)
                .map_err(|e| format!("cannot read checkpoint {checkpoint_path}: {e}"))?;
            let info = checkpoint::peek(&bytes).map_err(|e| e.to_string())?;
            // Rebuild the evaluation view at the checkpoint's preprocess
            // level (cached rows are keyed in its reduction's key space).
            let red = match info.preprocess {
                ReduceLevel::Off => None,
                level => Some(reduce(g, level).map_err(|e| {
                    format!("cannot rebuild `{}` reduction for resume: {e}", level.as_str())
                })?),
            };
            let view = SpdView::from_option(g, red.as_ref()).with_kernel(*kernel);
            let prefetch = PrefetchConfig::with_threads(*threads).with_depth(*prefetch_depth);
            let mut out = vec![format!("graph: {g}")];
            // A resumed run keeps checkpointing — by default over the file
            // it came from, so a second interruption loses at most one
            // segment (writes are atomic; `--checkpoint` redirects).
            let sink_path = checkpoint.as_deref().unwrap_or(checkpoint_path);
            let mut sink = Some(checkpoint_sink(sink_path));
            match info.kind {
                CheckpointKind::Single => {
                    let (est, report) = pipeline::resume_single_view(
                        view,
                        &bytes,
                        &prefetch,
                        sink.as_mut().map(|s| s as &mut pipeline::CheckpointSink<'_>),
                    )
                    .map_err(|e| e.to_string())?;
                    let vertex = external(est.r);
                    out.push(format!(
                        "resumed single-space run at iteration {} of budget {}",
                        report.resumed_from, report.budget
                    ));
                    out.push(format!(
                        "BC({vertex}) ~ {:.6} (Eq 7) | {:.6} (corrected, recommended)",
                        est.bc, est.bc_corrected
                    ));
                    out.push(format!(
                        "iterations {} | acceptance {:.3} | SPD passes {} | threads {} | kernel {}",
                        est.iterations,
                        est.acceptance_rate,
                        est.spd_passes,
                        (*threads).max(1),
                        kernel.as_str()
                    ));
                    out.push(plan_vs_actual_line(&report));
                }
                CheckpointKind::Joint => {
                    if prefetch.is_parallel() {
                        return Err("joint checkpoints resume sequentially; drop --threads".into());
                    }
                    let engine =
                        mhbc_core::resume_joint(view, &bytes).map_err(|e| e.to_string())?;
                    out.push(format!(
                        "resumed joint-space run at iteration {} of budget {}",
                        engine.iterations(),
                        engine.budget()
                    ));
                    let (est, _) = match sink.as_mut() {
                        None => engine.run(),
                        Some(f) => {
                            engine.run_with(|e| f(e.checkpoint())).map_err(|e| e.to_string())?
                        }
                    };
                    let inputs: Vec<Vertex> = est.probes.iter().map(|&p| external(p)).collect();
                    let mut ranked: Vec<(Vertex, f64)> =
                        inputs.iter().enumerate().map(|(i, &v)| (v, est.ratio(i, 0))).collect();
                    ranked
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    out.push(format!(
                        "ranking by betweenness ratio vs vertex {} ({} iterations):",
                        inputs[0], est.iterations
                    ));
                    for (v, ratio) in ranked {
                        out.push(format!("  {v:>8}  ratio {ratio:.4}"));
                    }
                }
                CheckpointKind::Ensemble => {
                    let engine = mhbc_core::ensemble::resume_ensemble(view, &bytes, prefetch)
                        .map_err(|e| e.to_string())?;
                    out.push(format!(
                        "resumed ensemble run at iteration {} of per-chain budget {}",
                        engine.iterations(),
                        engine.budget()
                    ));
                    let (est, report) = match sink.as_mut() {
                        None => engine.run(),
                        Some(f) => {
                            engine.run_with(|e| f(e.checkpoint())).map_err(|e| e.to_string())?
                        }
                    };
                    out.push(format!(
                        "BC ~ {:.6} (Eq 7, pooled) | {:.6} (corrected) | R-hat {:.4}",
                        est.bc, est.bc_corrected, est.r_hat
                    ));
                    out.push(plan_vs_actual_line(&report));
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_estimate_with_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--iters", "99", "--exact"])).unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 99,
                seed: 42,
                exact: true,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
                adaptive: AdaptiveArgs::default(),
            }
        );
    }

    #[test]
    fn parses_threads_and_prefetch_flags() {
        let cmd = parse(&strs(&["estimate", "g.txt", "5", "--threads", "4", "--prefetch", "64"]))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Estimate {
                path: "g.txt".into(),
                vertex: 5,
                iterations: 10_000,
                seed: 42,
                exact: false,
                threads: 4,
                prefetch_depth: 64,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
                adaptive: AdaptiveArgs::default(),
            }
        );
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--threads"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "5", "--prefetch", "0"])).is_err());
    }

    #[test]
    fn parses_rank_and_plan() {
        let cmd = parse(&strs(&["rank", "g.txt", "1,2,3", "--seed", "7"])).unwrap();
        assert_eq!(
            cmd,
            Command::Rank {
                path: "g.txt".into(),
                vertices: vec![1, 2, 3],
                iterations: 10_000,
                seed: 7,
                threads: 1,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                preprocess: PreprocessChoice::Level(ReduceLevel::Off),
                kernel: KernelMode::Auto,
                adaptive: AdaptiveArgs::default(),
            }
        );
        let cmd =
            parse(&strs(&["plan", "g.txt", "4", "0.05", "0.1", "--preprocess", "full"])).unwrap();
        assert_eq!(
            cmd,
            Command::Plan {
                path: "g.txt".into(),
                vertex: 4,
                epsilon: 0.05,
                delta: 0.1,
                preprocess: PreprocessChoice::Level(ReduceLevel::Full),
                kernel: KernelMode::Auto,
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&strs(&["estimate", "g.txt"])).is_err());
        assert!(parse(&strs(&["rank", "g.txt", "1"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "x"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--bogus"])).is_err());
        assert!(parse(&strs(&["plan", "g.txt", "1", "abc", "0.1"])).is_err());
    }

    #[test]
    fn load_reduces_to_largest_component() {
        let text = "0 1\n1 2\n2 0\n3 4\n";
        let (g, map) = load_graph(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn estimate_command_end_to_end() {
        // Barbell written as an edge list; estimate the bridge vertex.
        let mut text = String::new();
        let g = mhbc_graph::generators::barbell(5, 1);
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 5_000,
            seed: 1,
            exact: true,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("BC(5)")));
        assert!(out.iter().any(|l| l.contains("exact")));
    }

    #[test]
    fn threaded_estimate_matches_sequential_output() {
        let g = mhbc_graph::generators::barbell(5, 1);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let mk = |threads| Command::Estimate {
            path: String::new(),
            vertex: 5,
            iterations: 2_000,
            seed: 9,
            exact: false,
            threads,
            prefetch_depth: 32,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let seq = execute(&mk(1), &lcc, &map).unwrap();
        let par = execute(&mk(3), &lcc, &map).unwrap();
        // Identical estimate line; the stats line differs only in the
        // reported thread count.
        assert_eq!(seq[1], par[1]);
        assert!(par[2].contains("threads 3"));
    }

    #[test]
    fn rank_command_orders_by_ratio() {
        let g = mhbc_graph::generators::barbell(6, 3);
        let mut text = String::new();
        for (u, v, _) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let (lcc, map) = load_graph(Cursor::new(text)).unwrap();
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![6, 7],
            iterations: 20_000,
            seed: 3,
            threads: 2,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Full),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        // The middle path vertex 7 carries more pairs than 6.
        let pos7 = out.iter().position(|l| l.trim_start().starts_with('7')).unwrap();
        let pos6 = out.iter().position(|l| l.trim_start().starts_with('6')).unwrap();
        assert!(pos7 < pos6, "vertex 7 should rank above 6: {out:?}");
    }

    fn edge_list_text(g: &CsrGraph) -> String {
        let mut text = String::new();
        for (u, v, w) in g.edges() {
            if g.is_weighted() {
                text.push_str(&format!("{u} {v} {w}\n"));
            } else {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
        text
    }

    #[test]
    fn rejects_bad_preprocess_value() {
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--preprocess", "max"]))
            .unwrap_err()
            .contains("off|prune|full|auto"));
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--preprocess"])).is_err());
    }

    #[test]
    fn parses_kernel_and_auto_preprocess_flags() {
        let cmd =
            parse(&strs(&["estimate", "g.txt", "3", "--kernel", "hybrid", "--preprocess", "auto"]))
                .unwrap();
        match cmd {
            Command::Estimate { kernel, preprocess, .. } => {
                assert_eq!(kernel, KernelMode::Hybrid);
                assert_eq!(preprocess, PreprocessChoice::Auto);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--kernel", "bottomup"]))
            .unwrap_err()
            .contains("auto|topdown|hybrid"));
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--kernel"])).is_err());
    }

    #[test]
    fn kernel_modes_produce_identical_estimates() {
        let g = mhbc_graph::generators::barbell(6, 2);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |kernel| Command::Estimate {
            path: String::new(),
            vertex: 6,
            iterations: 1_500,
            seed: 21,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel,
            adaptive: AdaptiveArgs::default(),
        };
        let auto = execute(&mk(KernelMode::Auto), &lcc, &map).unwrap();
        for kernel in [KernelMode::TopDown, KernelMode::Hybrid] {
            let out = execute(&mk(kernel), &lcc, &map).unwrap();
            // Identical estimate line; the stats line names the mode.
            assert_eq!(auto[1], out[1], "{kernel:?}");
            assert!(out[2].contains(&format!("kernel {}", kernel.as_str())), "{out:?}");
        }
    }

    #[test]
    fn auto_preprocess_keeps_paying_reductions_and_discards_empty_ones() {
        // Lollipop: heavy pendant mass — auto keeps the full reduction.
        let g = mhbc_graph::generators::lollipop(6, 5);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex| Command::Estimate {
            path: String::new(),
            vertex,
            iterations: 1_000,
            seed: 3,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Auto,
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let out = execute(&mk(0), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("preprocess auto: kept full")), "{out:?}");
        assert!(out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");

        // A cycle is irreducible: auto must discard the empty reduction.
        let g = mhbc_graph::generators::cycle(12);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let out = execute(&mk(0), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("preprocess auto: discarded full")), "{out:?}");
        assert!(!out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("BC(0) ~")), "{out:?}");
    }

    #[test]
    fn auto_preprocess_keeps_closed_forms_for_pruned_probes_even_when_discarded() {
        // One pendant on a big cycle: the work ratio is too small to keep
        // the reduction for sampling, but the pendant probe's exact BC is
        // still a free by-product of the build — no chain may run.
        let mut edges: Vec<(u32, u32)> = (0..40u32).map(|v| (v, (v + 1) % 40)).collect();
        edges.push((0, 40)); // the pendant
        let g = CsrGraph::from_edges(41, &edges).unwrap();
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 40,
            iterations: 500,
            seed: 7,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Auto,
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("discarded full for sampling")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("exact: vertex was pruned")), "{out:?}");
        assert!(!out.iter().any(|l| l.contains("BC(40) ~")), "no sampling: {out:?}");
    }

    #[test]
    fn preprocessed_estimate_reports_reduction_and_closed_forms() {
        // Lollipop: the pendant path prunes away entirely.
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex, preprocess| Command::Estimate {
            path: String::new(),
            vertex,
            iterations: 3_000,
            seed: 5,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess,
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        // Retained probe: sampled estimate, with a preprocess summary line.
        let out = execute(&mk(0, PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.starts_with("preprocess full:")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("BC(0) ~")), "{out:?}");
        // Pruned probe: exact closed form, no sampling.
        let out = execute(&mk(8, PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("exact: vertex was pruned")), "{out:?}");
        let exact = mhbc_spd::exact_betweenness_of(&lcc, 8);
        assert!(out.iter().any(|l| l.contains(&format!("{exact:.6}"))), "{out:?}");
    }

    #[test]
    fn weighted_graphs_refuse_full_preprocess_but_allow_prune() {
        let g = mhbc_graph::generators::lollipop(5, 2).map_weights(|_, _| 2.5).unwrap();
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |preprocess| Command::Estimate {
            path: String::new(),
            vertex: 0,
            iterations: 500,
            seed: 1,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess,
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let err = execute(&mk(PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap_err();
        assert!(err.contains("--preprocess full"), "{err}");
        assert!(err.contains("unweighted"), "{err}");
        assert!(execute(&mk(PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).is_ok());
    }

    #[test]
    fn preprocessed_rank_rejects_pruned_probes_with_guidance() {
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![0, 8],
            iterations: 100,
            seed: 1,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Prune),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        let err = execute(&cmd, &lcc, &map).unwrap_err();
        assert!(err.contains("vertex 8"), "{err}");
        assert!(err.contains("--preprocess off"), "{err}");
    }

    #[test]
    fn plan_reports_the_assumed_reduction_ratio() {
        let g = mhbc_graph::generators::lollipop(6, 3);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let mk = |vertex, preprocess| Command::Plan {
            path: String::new(),
            vertex,
            epsilon: 0.05,
            delta: 0.1,
            preprocess,
            kernel: KernelMode::Auto,
        };
        // Vertex 5 is the path's clique attachment: positive betweenness.
        let out = execute(&mk(5, PreprocessChoice::Level(ReduceLevel::Full)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("assumed reduction ratio")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("less work than an unreduced pass")), "{out:?}");
        // Without preprocessing there is no ratio line.
        let out = execute(&mk(5, PreprocessChoice::Level(ReduceLevel::Off)), &lcc, &map).unwrap();
        assert!(!out.iter().any(|l| l.contains("reduction ratio")), "{out:?}");
        // A pruned probe needs no iterations at all.
        let out = execute(&mk(8, PreprocessChoice::Level(ReduceLevel::Prune)), &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("0 iterations needed")), "{out:?}");
    }

    #[test]
    fn parses_adaptive_and_checkpoint_flags() {
        let cmd = parse(&strs(&[
            "estimate",
            "g.txt",
            "5",
            "--target-se",
            "0.01",
            "--target-delta",
            "0.1",
            "--segment",
            "512",
            "--checkpoint",
            "run.ckpt",
        ]))
        .unwrap();
        match cmd {
            Command::Estimate { adaptive, .. } => {
                assert_eq!(adaptive.target_se, Some(0.01));
                assert_eq!(adaptive.target_delta, 0.1);
                assert_eq!(adaptive.segment, 512);
                assert_eq!(adaptive.checkpoint.as_deref(), Some("run.ckpt"));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--target-se", "0"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--target-delta", "1.5"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--segment", "0"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--checkpoint"])).is_err());
        assert!(parse(&strs(&["estimate", "g.txt", "1", "--checkpoint", "--exact"])).is_err());
    }

    #[test]
    fn parses_resume_subcommand() {
        let cmd =
            parse(&strs(&["resume", "g.txt", "run.ckpt", "--threads", "4", "--kernel", "hybrid"]))
                .unwrap();
        assert_eq!(
            cmd,
            Command::Resume {
                path: "g.txt".into(),
                checkpoint_path: "run.ckpt".into(),
                threads: 4,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                kernel: KernelMode::Hybrid,
                checkpoint: None,
            }
        );
        assert!(parse(&strs(&["resume", "g.txt"])).is_err());
    }

    fn lollipop_fixture() -> (CsrGraph, Vec<Vertex>) {
        let g = mhbc_graph::generators::lollipop(8, 4);
        load_graph(Cursor::new(edge_list_text(&g))).unwrap()
    }

    #[test]
    fn adaptive_estimate_reports_plan_vs_actual() {
        let (lcc, map) = lollipop_fixture();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 9,
            iterations: 100_000,
            seed: 5,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs {
                target_se: Some(0.05),
                target_delta: 0.05,
                segment: 512,
                checkpoint: None,
            },
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        let line = out
            .iter()
            .find(|l| l.starts_with("plan vs actual:"))
            .expect("plan-vs-actual line present");
        assert!(line.contains("budget 100000"), "{line}");
        assert!(line.contains("target reached"), "{line}");
        assert!(line.contains("refit mu"), "{line}");
        // Stopped well before the budget.
        let iters_line = out.iter().find(|l| l.starts_with("iterations ")).unwrap();
        assert!(!iters_line.contains("iterations 100000"), "{iters_line}");
    }

    #[test]
    fn adaptive_rank_schedules_budget_toward_uncertain_probes() {
        let (lcc, map) = lollipop_fixture();
        // Probe 11 has zero BC (converges instantly); probe 9 is genuinely
        // uncertain under a tight target.
        let cmd = Command::Rank {
            path: String::new(),
            vertices: vec![9, 11],
            iterations: 2_000,
            seed: 7,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs {
                target_se: Some(1e-7),
                target_delta: 0.05,
                segment: 128,
                checkpoint: None,
            },
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(out.iter().any(|l| l.contains("adaptive ranking")), "{out:?}");
        let line9 = out.iter().find(|l| l.trim_start().starts_with("9 ")).unwrap();
        let line11 = out.iter().find(|l| l.trim_start().starts_with("11 ")).unwrap();
        assert!(line11.contains("(128 iters"), "zero-BC probe gets one segment: {line11}");
        assert!(line9.contains("budget cut"), "hard probe exhausts the budget: {line9}");
        // Ranking order: 9 above 11.
        let pos9 = out.iter().position(|l| l.trim_start().starts_with("9 ")).unwrap();
        let pos11 = out.iter().position(|l| l.trim_start().starts_with("11 ")).unwrap();
        assert!(pos9 < pos11);

        // Adaptive rank refuses --checkpoint loudly instead of silently
        // dropping it.
        let mut with_ckpt = cmd.clone();
        if let Command::Rank { adaptive, .. } = &mut with_ckpt {
            adaptive.checkpoint = Some("nope.ckpt".into());
        }
        let err = execute(&with_ckpt, &lcc, &map).unwrap_err();
        assert!(err.contains("does not support --checkpoint"), "{err}");
    }

    #[test]
    fn checkpointed_estimate_resumes_to_identical_output() {
        let (lcc, map) = lollipop_fixture();
        let dir = std::env::temp_dir().join("mhbc_cli_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("single.ckpt");
        let ckpt_str = ckpt.to_str().unwrap().to_string();

        // The uninterrupted reference.
        let mk = |adaptive| Command::Estimate {
            path: String::new(),
            vertex: 9,
            iterations: 3_000,
            seed: 21,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive,
        };
        let full = execute(&mk(AdaptiveArgs::default()), &lcc, &map).unwrap();
        let bc_line = full.iter().find(|l| l.starts_with("BC(9)")).unwrap().clone();

        // A checkpointed run leaves its last segment boundary on disk…
        let _ = execute(
            &mk(AdaptiveArgs {
                checkpoint: Some(ckpt_str.clone()),
                segment: 500,
                ..AdaptiveArgs::default()
            }),
            &lcc,
            &map,
        )
        .unwrap();
        assert!(ckpt.exists());

        // …which `resume` finishes to the identical estimate (here the
        // last boundary was iteration 2500 of 3000), even under a
        // different kernel mode and thread count.
        for threads in [1usize, 3] {
            let resume = Command::Resume {
                path: String::new(),
                checkpoint_path: ckpt_str.clone(),
                threads,
                prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
                kernel: KernelMode::Hybrid,
                checkpoint: None,
            };
            let out = execute(&resume, &lcc, &map).unwrap();
            assert!(
                out.iter().any(|l| l.contains("resumed single-space run at iteration 2500")),
                "{out:?}"
            );
            assert!(out.contains(&bc_line), "resume output {out:?} lacks `{bc_line}`");
        }
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_graph() {
        let (lcc, map) = lollipop_fixture();
        let dir = std::env::temp_dir().join("mhbc_cli_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("single.ckpt");
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 9,
            iterations: 2_000,
            seed: 1,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs {
                checkpoint: Some(ckpt.to_str().unwrap().into()),
                segment: 500,
                ..AdaptiveArgs::default()
            },
        };
        let _ = execute(&cmd, &lcc, &map).unwrap();
        let other = mhbc_graph::generators::barbell(6, 2);
        let (olcc, omap) = load_graph(Cursor::new(edge_list_text(&other))).unwrap();
        let resume = Command::Resume {
            path: String::new(),
            checkpoint_path: ckpt.to_str().unwrap().into(),
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            kernel: KernelMode::Auto,
            checkpoint: None,
        };
        let err = execute(&resume, &olcc, &omap).unwrap_err();
        assert!(err.contains("graph mismatch"), "{err}");
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn plan_reports_discarded_auto_reduction_as_unit_ratio() {
        // A cycle is irreducible: auto builds the reduction and discards
        // it, and the plan must report the honest 1.0 ratio rather than
        // the assumed one.
        let g = mhbc_graph::generators::cycle(12);
        let (lcc, map) = load_graph(Cursor::new(edge_list_text(&g))).unwrap();
        let cmd = Command::Plan {
            path: String::new(),
            vertex: 0,
            epsilon: 0.05,
            delta: 0.1,
            preprocess: PreprocessChoice::Auto,
            kernel: KernelMode::Auto,
        };
        let out = execute(&cmd, &lcc, &map).unwrap();
        assert!(
            out.iter().any(|l| l.contains("assumed reduction ratio: 1.0 (discarded)")),
            "{out:?}"
        );
        assert!(!out.iter().any(|l| l.contains("less work than an unreduced pass")), "{out:?}");
    }

    #[test]
    fn missing_vertex_reported() {
        let (g, map) = load_graph(Cursor::new("0 1\n1 2\n")).unwrap();
        let cmd = Command::Estimate {
            path: String::new(),
            vertex: 99,
            iterations: 10,
            seed: 0,
            exact: false,
            threads: 1,
            prefetch_depth: PrefetchConfig::DEFAULT_DEPTH,
            preprocess: PreprocessChoice::Level(ReduceLevel::Off),
            kernel: KernelMode::Auto,
            adaptive: AdaptiveArgs::default(),
        };
        assert!(execute(&cmd, &g, &map).unwrap_err().contains("99"));
    }
}
