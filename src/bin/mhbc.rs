//! `mhbc` — command-line betweenness estimation on edge-list files.
//!
//! ```text
//! mhbc estimate graph.txt 42 --iters 20000 --exact
//! mhbc rank graph.txt 3,17,256
//! mhbc plan graph.txt 42 0.05 0.05
//! ```

use mhbc_suite::cli;
use std::fs::File;
use std::io::BufReader;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let path = match &cmd {
        cli::Command::Estimate { path, .. }
        | cli::Command::Rank { path, .. }
        | cli::Command::Plan { path, .. }
        | cli::Command::Resume { path, .. } => path.clone(),
    };
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    let result =
        cli::load_graph(BufReader::new(file)).and_then(|(g, map)| cli::execute(&cmd, &g, &map));
    match result {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
