//! # mhbc-suite
//!
//! Facade over the `mhbc` workspace: a Rust reproduction of
//! *Metropolis-Hastings Algorithms for Estimating Betweenness Centrality*
//! (Chehreghani, Abdessalem, Bifet — EDBT 2019 / arXiv:1704.07351).
//!
//! The workspace is organised as focused crates; this facade re-exports them
//! under stable names so examples and downstream users can depend on a single
//! crate:
//!
//! - [`graph`] — compact CSR graphs, random-graph generators, edge-list IO
//! - [`spd`] — shortest-path DAGs, Brandes dependency accumulation, exact BC
//! - [`mcmc`] — generic Metropolis-Hastings machinery, diagnostics, bounds
//! - [`core`] — the paper's single-space and joint-space MCMC samplers
//! - [`baselines`] — prior sampling estimators (uniform, distance \[13\], RK \[30\], bb-BFS \[7\])
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use mhbc_suite::prelude::*;
//!
//! // Estimate the bridge vertex of a barbell graph and compare with exact
//! // Brandes — the corrected estimator should land within a few percent.
//! let g = generators::barbell(6, 1);
//! let est = SingleSpaceSampler::new(&g, 6, SingleSpaceConfig::new(4_000, 7)).unwrap().run();
//! let exact = exact_betweenness_of(&g, 6);
//! assert!((est.bc_corrected - exact).abs() < 0.05);
//! ```

pub mod cli;

pub use mhbc_baselines as baselines;
pub use mhbc_core as core;
pub use mhbc_graph as graph;
pub use mhbc_mcmc as mcmc;
pub use mhbc_spd as spd;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use mhbc_core::{JointSpaceSampler, SingleSpaceConfig, SingleSpaceSampler};
    pub use mhbc_graph::{generators, CsrGraph, GraphBuilder};
    pub use mhbc_spd::{exact_betweenness, exact_betweenness_of, DependencyCalculator};
}
