//! # mhbc-suite
//!
//! Facade over the `mhbc` workspace: a Rust reproduction of
//! *Metropolis-Hastings Algorithms for Estimating Betweenness Centrality*
//! (Chehreghani, Abdessalem, Bifet — EDBT 2019 / arXiv:1704.07351).
//!
//! The workspace is organised as focused crates; this facade re-exports them
//! under stable names so examples and downstream users can depend on a single
//! crate:
//!
//! - [`graph`] — compact CSR graphs, random-graph generators, edge-list IO
//! - [`spd`] — shortest-path DAGs, Brandes dependency accumulation, exact BC
//! - [`mcmc`] — generic Metropolis-Hastings machinery, diagnostics, bounds
//! - [`core`] — the paper's single-space and joint-space MCMC samplers
//! - [`baselines`] — prior sampling estimators (uniform, distance \[13\], RK \[30\], bb-BFS \[7\])
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub mod cli;

pub use mhbc_baselines as baselines;
pub use mhbc_core as core;
pub use mhbc_graph as graph;
pub use mhbc_mcmc as mcmc;
pub use mhbc_spd as spd;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use mhbc_core::{JointSpaceSampler, SingleSpaceConfig, SingleSpaceSampler};
    pub use mhbc_graph::{generators, CsrGraph, GraphBuilder};
    pub use mhbc_spd::{exact_betweenness, exact_betweenness_of, DependencyCalculator};
}
