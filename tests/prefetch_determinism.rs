//! Tier-1 guarantee of the speculative prefetch pipeline: for every thread
//! count, the pipelined samplers produce **bit-identical** results to the
//! sequential ones — same `bc`, `bc_corrected`, acceptance statistics, and
//! `spd_passes`. Parallelism buys wall-clock only, never a different answer.

use mhbc_core::{
    pipeline, run_ensemble, EnsembleConfig, JointSpaceConfig, JointSpaceSampler, PrefetchConfig,
    SingleSpaceConfig, SingleSpaceSampler,
};
use mhbc_graph::generators;
use rand::{rngs::SmallRng, SeedableRng};

/// Everything the determinism guarantee covers, as raw bits.
fn single_fingerprint(e: &mhbc_core::SingleSpaceEstimate) -> (u64, u64, u64, u64, u64) {
    (
        e.bc.to_bits(),
        e.bc_corrected.to_bits(),
        e.acceptance_rate.to_bits(),
        e.spd_passes,
        e.iterations,
    )
}

#[test]
fn single_space_bit_identical_across_thread_counts() {
    let mut rng = SmallRng::seed_from_u64(2024);
    let graphs = [
        ("ba", generators::barabasi_albert(300, 3, &mut rng)),
        ("lollipop", generators::lollipop(10, 6)),
        ("grid", generators::grid(12, 12, false)),
    ];
    for (name, g) in &graphs {
        let r = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
        for seed in [1u64, 99] {
            let config = SingleSpaceConfig::new(1_500, seed);
            let seq = SingleSpaceSampler::new(g, r, config.clone()).unwrap().run();
            for threads in [1usize, 2, 8] {
                let par =
                    pipeline::run_single(g, r, &config, &PrefetchConfig::with_threads(threads))
                        .unwrap();
                assert_eq!(
                    single_fingerprint(&seq),
                    single_fingerprint(&par),
                    "{name}, seed {seed}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn single_space_traces_are_bit_identical_too() {
    let g = generators::barbell(8, 2);
    let config = SingleSpaceConfig::new(1_200, 7).with_trace();
    let seq = SingleSpaceSampler::new(&g, 8, config.clone()).unwrap().run();
    let par = pipeline::run_single(&g, 8, &config, &PrefetchConfig::with_threads(8)).unwrap();
    let (st, pt) = (seq.trace.unwrap(), par.trace.unwrap());
    assert_eq!(st.len(), pt.len());
    for (i, (a, b)) in st.iter().zip(&pt).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "trace entry {i}");
    }
    assert_eq!(seq.density_series.unwrap(), par.density_series.unwrap());
}

#[test]
fn single_space_ablation_configs_stay_identical() {
    // Burn-in and accepted-only change the accumulation rules; the pipeline
    // must follow them identically.
    let g = generators::lollipop(7, 5);
    for config in [
        SingleSpaceConfig::new(900, 3).with_burn_in(100),
        SingleSpaceConfig::new(900, 3).accepted_only(),
        SingleSpaceConfig::new(900, 3).with_initial(2),
    ] {
        let seq = SingleSpaceSampler::new(&g, 7, config.clone()).unwrap().run();
        let par = pipeline::run_single(&g, 7, &config, &PrefetchConfig::with_threads(4)).unwrap();
        assert_eq!(single_fingerprint(&seq), single_fingerprint(&par));
    }
}

#[test]
fn joint_space_bit_identical_across_thread_counts() {
    let g = generators::barbell(7, 3);
    let probes = [7u32, 8, 9, 0];
    let config = JointSpaceConfig::new(2_000, 17);
    let seq = JointSpaceSampler::new(&g, &probes, config.clone()).unwrap().run();
    for threads in [1usize, 2, 8] {
        let par = pipeline::run_joint(&g, &probes, &config, &PrefetchConfig::with_threads(threads))
            .unwrap();
        assert_eq!(seq.counts, par.counts, "threads {threads}");
        assert_eq!(seq.spd_passes, par.spd_passes, "threads {threads}");
        assert_eq!(
            seq.acceptance_rate.to_bits(),
            par.acceptance_rate.to_bits(),
            "threads {threads}"
        );
        for i in 0..probes.len() {
            for j in 0..probes.len() {
                assert_eq!(
                    seq.relative[i][j].to_bits(),
                    par.relative[i][j].to_bits(),
                    "({i},{j}), threads {threads}"
                );
            }
        }
    }
}

#[test]
fn ensemble_bit_identical_with_and_without_prefetch_squads() {
    let g = generators::barbell(6, 2);
    let base = EnsembleConfig::new(4, 1_000, 23);
    let seq = run_ensemble(&g, 6, &base).unwrap();
    for threads in [2usize, 4] {
        let cfg = base.clone().with_prefetch(PrefetchConfig::with_threads(threads));
        let par = run_ensemble(&g, 6, &cfg).unwrap();
        assert_eq!(seq.bc.to_bits(), par.bc.to_bits(), "threads {threads}");
        assert_eq!(seq.bc_corrected.to_bits(), par.bc_corrected.to_bits());
        assert_eq!(seq.acceptance_rate.to_bits(), par.acceptance_rate.to_bits());
        assert_eq!(seq.spd_passes, par.spd_passes);
        assert_eq!(seq.r_hat.to_bits(), par.r_hat.to_bits());
        for (a, b) in seq.per_chain.iter().zip(&par.per_chain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn weighted_graphs_flow_through_the_pipeline_unchanged() {
    let mut rng = SmallRng::seed_from_u64(55);
    let g = generators::assign_uniform_weights(&generators::barbell(6, 2), 1.0, 4.0, &mut rng);
    let config = SingleSpaceConfig::new(800, 31);
    let seq = SingleSpaceSampler::new(&g, 6, config.clone()).unwrap().run();
    let par = pipeline::run_single(&g, 6, &config, &PrefetchConfig::with_threads(4)).unwrap();
    assert_eq!(single_fingerprint(&seq), single_fingerprint(&par));
}

/// A cycle with deliberately scrambled vertex ids: pendant-free and
/// twin-free (so `full` preprocessing is structure-neutral), with dyadic
/// shortest-path counts (σ ∈ {1, 2}), and fragmented enough that the
/// locality guard *does* relabel — exercising the whole reduced evaluation
/// path while keeping every density bit-equal to the direct one.
fn scrambled_cycle(n: usize) -> mhbc_graph::CsrGraph {
    let perm: Vec<u32> = {
        // Fixed multiplicative scramble; the stride is coprime with both n
        // values used below (bijection) and large enough that neighbouring
        // cycle vertices land far apart in id space.
        let stride = 37u64;
        (0..n as u64).map(|i| ((i * stride) % n as u64) as u32).collect()
    };
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (perm[i], perm[(i + 1) % n])).collect();
    mhbc_graph::CsrGraph::from_edges(n, &edges).unwrap()
}

#[test]
fn preprocessed_runs_bit_identical_across_thread_counts() {
    use mhbc_graph::reduce::{reduce, ReduceLevel};
    use mhbc_spd::SpdView;

    let mut rng = SmallRng::seed_from_u64(77);
    let graphs = [
        ("web", generators::preferential_attachment_mixed(400, 1, 4, 0.45, &mut rng)),
        ("dup", generators::duplication_divergence(400, 0.5, &mut rng)),
        ("lollipop", generators::lollipop(10, 6)),
    ];
    for (name, g) in &graphs {
        for level in [ReduceLevel::Prune, ReduceLevel::Full] {
            let red = reduce(g, level).unwrap();
            let view = SpdView::preprocessed(g, &red);
            let r = (0..g.num_vertices() as u32)
                .filter(|&v| red.is_retained(v))
                .max_by_key(|&v| g.degree(v))
                .unwrap();
            let config = SingleSpaceConfig::new(1_200, 5);
            let seq =
                pipeline::run_single_view(view, r, &config, &PrefetchConfig::sequential()).unwrap();
            for threads in [1usize, 2, 8] {
                let par = pipeline::run_single_view(
                    view,
                    r,
                    &config,
                    &PrefetchConfig::with_threads(threads),
                )
                .unwrap();
                assert_eq!(
                    single_fingerprint(&seq),
                    single_fingerprint(&par),
                    "{name}, {level:?}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn preprocess_full_matches_off_run_for_run_on_pendant_free_graphs() {
    use mhbc_graph::reduce::{reduce, ReduceLevel, VertexState};
    use mhbc_spd::SpdView;

    for n in [101usize, 128] {
        let g = scrambled_cycle(n);
        let red = reduce(&g, ReduceLevel::Full).unwrap();
        assert_eq!(red.stats().pruned_vertices, 0);
        assert_eq!(red.stats().collapsed_vertices, 0);
        // The scrambled layout must actually trigger the relabel, so the
        // reduced evaluation path (not a trivial identity) is under test.
        let relabelled = (0..n as u32).any(|v| match red.state(v) {
            VertexState::Retained { h, .. } => h != v,
            _ => false,
        });
        assert!(relabelled, "scrambled cycle should be relabelled");
        let view = SpdView::preprocessed(&g, &red);
        for seed in [2u64, 41, 97] {
            let config = SingleSpaceConfig::new(2_000, seed);
            let off = pipeline::run_single(&g, 0, &config, &PrefetchConfig::sequential()).unwrap();
            let full =
                pipeline::run_single_view(view, 0, &config, &PrefetchConfig::with_threads(2))
                    .unwrap();
            assert_eq!(
                (off.bc.to_bits(), off.bc_corrected.to_bits(), off.acceptance_rate.to_bits()),
                (full.bc.to_bits(), full.bc_corrected.to_bits(), full.acceptance_rate.to_bits()),
                "cycle({n}), seed {seed}"
            );
        }
    }
}

#[test]
fn preprocessed_joint_bit_identical_across_thread_counts() {
    use mhbc_graph::reduce::{reduce, ReduceLevel};
    use mhbc_spd::SpdView;

    let mut rng = SmallRng::seed_from_u64(91);
    let g = generators::preferential_attachment_mixed(300, 1, 3, 0.4, &mut rng);
    let red = reduce(&g, ReduceLevel::Full).unwrap();
    let view = SpdView::preprocessed(&g, &red);
    let mut retained = (0..g.num_vertices() as u32).filter(|&v| red.is_retained(v));
    let probes = [retained.next().unwrap(), retained.next().unwrap(), retained.next().unwrap()];
    let config = JointSpaceConfig::new(1_500, 13);
    let seq =
        pipeline::run_joint_view(view, &probes, &config, &PrefetchConfig::sequential()).unwrap();
    for threads in [2usize, 8] {
        let par = pipeline::run_joint_view(
            view,
            &probes,
            &config,
            &PrefetchConfig::with_threads(threads),
        )
        .unwrap();
        assert_eq!(seq.counts, par.counts, "threads {threads}");
        assert_eq!(seq.spd_passes, par.spd_passes, "threads {threads}");
        for i in 0..probes.len() {
            for j in 0..probes.len() {
                assert_eq!(
                    seq.relative[i][j].to_bits(),
                    par.relative[i][j].to_bits(),
                    "({i},{j}), threads {threads}"
                );
            }
        }
    }
}

#[test]
fn sampler_pipeline_bit_identical_across_kernel_modes_and_threads() {
    // PR 4 acceptance: the direction-optimizing SPD kernel's canonical
    // settle order makes every KernelMode produce identical density rows,
    // so the whole sampler pipeline — single and joint, reduced and
    // direct — agrees bit for bit across `--kernel` x `--threads 1/2/8`.
    use mhbc_graph::reduce::{reduce, ReduceLevel};
    use mhbc_spd::{KernelMode, SpdView};

    let mut rng = SmallRng::seed_from_u64(44);
    let g = generators::barabasi_albert(250, 3, &mut rng);
    let r = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap();
    let red = reduce(&g, ReduceLevel::Full).unwrap();
    let config = SingleSpaceConfig::new(1_200, 5);
    let modes = [KernelMode::Auto, KernelMode::TopDown, KernelMode::Hybrid];

    for (label, reduced) in [("direct", None), ("reduced", Some(&red))] {
        let mut reference = None;
        for mode in modes {
            let view = SpdView::from_option(&g, reduced).with_kernel(mode);
            for threads in [1usize, 2, 8] {
                let est = pipeline::run_single_view(
                    view,
                    r,
                    &config,
                    &PrefetchConfig::with_threads(threads),
                )
                .unwrap();
                let fp = single_fingerprint(&est);
                match &reference {
                    None => reference = Some(fp),
                    Some(want) => {
                        assert_eq!(*want, fp, "{label}, mode {mode:?}, threads {threads}")
                    }
                }
            }
        }
    }

    // Joint-space sampler across modes (sequential vs threaded).
    let probes = [r, (r + 1) % g.num_vertices() as u32, (r + 7) % g.num_vertices() as u32];
    let jconfig = JointSpaceConfig::new(900, 11);
    let mut reference: Option<Vec<u64>> = None;
    for mode in modes {
        let view = SpdView::direct(&g).with_kernel(mode);
        for threads in [1usize, 4] {
            let est = pipeline::run_joint_view(
                view,
                &probes,
                &jconfig,
                &PrefetchConfig::with_threads(threads),
            )
            .unwrap();
            let fp: Vec<u64> = est
                .relative
                .iter()
                .flatten()
                .map(|x| x.to_bits())
                .chain([est.spd_passes, est.acceptance_rate.to_bits()])
                .collect();
            match &reference {
                None => reference = Some(fp),
                Some(want) => assert_eq!(*want, &fp[..], "mode {mode:?}, threads {threads}"),
            }
        }
    }
}

/// PR 5 (adaptive engine): a checkpoint written at any segment boundary,
/// deserialized and continued, reproduces the uninterrupted run **bit for
/// bit** — across single/joint/ensemble, `--threads 1/2/8`, and `--kernel
/// auto/topdown` on both sides of the checkpoint. Property-based over
/// graph family, seed, and cut point.
mod checkpoint_roundtrip {
    use super::single_fingerprint;
    use mhbc_core::ensemble::{resume_ensemble, run_ensemble_view_adaptive};
    use mhbc_core::{
        pipeline, EngineConfig, EnsembleConfig, JointSpaceConfig, JointSpaceSampler,
        PrefetchConfig, SingleSpaceConfig, SingleSpaceSampler,
    };
    use mhbc_graph::generators;
    use mhbc_spd::{KernelMode, SpdView};
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    const THREADS: [usize; 3] = [1, 2, 8];
    const KERNELS: [KernelMode; 2] = [KernelMode::Auto, KernelMode::TopDown];

    fn graph_for(pick: u8) -> mhbc_graph::CsrGraph {
        match pick % 3 {
            0 => generators::lollipop(8, 4),
            1 => generators::barbell(6, 2),
            _ => {
                let mut rng = SmallRng::seed_from_u64(99);
                generators::barabasi_albert(80, 3, &mut rng)
            }
        }
    }

    fn hub(g: &mhbc_graph::CsrGraph) -> u32 {
        (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).expect("non-empty")
    }

    /// Captures the `cut`-th checkpoint a segmented run writes.
    fn nth_checkpoint<'a>(
        sink_calls: &'a mut u64,
        cut: u64,
        saved: &'a mut Option<Vec<u8>>,
    ) -> impl FnMut(Vec<u8>) -> Result<(), mhbc_core::CoreError> + 'a {
        move |bytes| {
            *sink_calls += 1;
            if *sink_calls == cut {
                *saved = Some(bytes);
            }
            Ok(())
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn single_resume_equals_uninterrupted(
            pick in 0u8..3,
            seed in 0u64..1_000,
            cut in 1u64..7,
            write_threads_i in 0usize..3,
            resume_threads_i in 0usize..3,
            write_kernel_i in 0usize..2,
            resume_kernel_i in 0usize..2,
        ) {
            let g = graph_for(pick);
            let r = hub(&g);
            let write_view = SpdView::direct(&g).with_kernel(KERNELS[write_kernel_i]);
            let resume_view = SpdView::direct(&g).with_kernel(KERNELS[resume_kernel_i]);
            let config = SingleSpaceConfig::new(1_200, seed).with_trace();
            let uninterrupted =
                SingleSpaceSampler::for_view(write_view, r, config.clone()).unwrap().run();

            // Serialize at the cut-th of 7 boundaries (segment 150)…
            let mut calls = 0;
            let mut saved = None;
            let mut sink = nth_checkpoint(&mut calls, cut, &mut saved);
            let _ = pipeline::run_single_view_adaptive(
                write_view,
                r,
                &config,
                EngineConfig::fixed().with_segment(150),
                &PrefetchConfig::with_threads(THREADS[write_threads_i]),
                Some(&mut sink),
            )
            .unwrap();
            drop(sink);
            let bytes = saved.expect("cut below the boundary count");

            // …deserialize and run to completion under independently chosen
            // thread count and kernel mode.
            let (resumed, report) = pipeline::resume_single_view(
                resume_view,
                &bytes,
                &PrefetchConfig::with_threads(THREADS[resume_threads_i]),
                None,
            )
            .unwrap();
            prop_assert_eq!(report.resumed_from, cut * 150);
            prop_assert_eq!(single_fingerprint(&uninterrupted), single_fingerprint(&resumed));
            prop_assert_eq!(uninterrupted.trace, resumed.trace);
            prop_assert_eq!(uninterrupted.density_series, resumed.density_series);
        }

        #[test]
        fn joint_resume_equals_uninterrupted(
            pick in 0u8..3,
            seed in 0u64..1_000,
            cut in 1u64..5,
            threads_i in 0usize..3,
            write_kernel_i in 0usize..2,
            resume_kernel_i in 0usize..2,
        ) {
            let g = graph_for(pick);
            let r = hub(&g);
            let n = g.num_vertices() as u32;
            let probes = [r, (r + 1) % n, (r + 5) % n];
            let write_view = SpdView::direct(&g).with_kernel(KERNELS[write_kernel_i]);
            let resume_view = SpdView::direct(&g).with_kernel(KERNELS[resume_kernel_i]);
            let config = JointSpaceConfig::new(900, seed);
            // The uninterrupted reference, through the threaded pipeline
            // (itself pinned bit-identical to sequential above).
            let uninterrupted = pipeline::run_joint_view(
                write_view,
                &probes,
                &config,
                &PrefetchConfig::with_threads(THREADS[threads_i]),
            )
            .unwrap();

            let mut calls = 0;
            let mut saved = None;
            let mut sink = nth_checkpoint(&mut calls, cut, &mut saved);
            let _ = JointSpaceSampler::for_view(write_view, &probes, config)
                .unwrap()
                .into_engine(EngineConfig::fixed().with_segment(150))
                .run_with(|e| sink(e.checkpoint()))
                .unwrap();
            drop(sink);
            let bytes = saved.expect("cut below the boundary count");

            let (resumed, _) =
                mhbc_core::resume_joint(resume_view, &bytes).unwrap().run();
            prop_assert_eq!(&uninterrupted.counts, &resumed.counts);
            prop_assert_eq!(uninterrupted.spd_passes, resumed.spd_passes);
            prop_assert_eq!(
                uninterrupted.acceptance_rate.to_bits(),
                resumed.acceptance_rate.to_bits()
            );
            for i in 0..probes.len() {
                for j in 0..probes.len() {
                    prop_assert_eq!(
                        uninterrupted.relative[i][j].to_bits(),
                        resumed.relative[i][j].to_bits(),
                        "({}, {})", i, j
                    );
                }
            }
        }

        #[test]
        fn ensemble_resume_equals_uninterrupted(
            pick in 0u8..3,
            seed in 0u64..1_000,
            cut in 1u64..5,
            write_threads_i in 0usize..3,
            resume_threads_i in 0usize..3,
            write_kernel_i in 0usize..2,
            resume_kernel_i in 0usize..2,
        ) {
            let g = graph_for(pick);
            let r = hub(&g);
            let write_view = SpdView::direct(&g).with_kernel(KERNELS[write_kernel_i]);
            let resume_view = SpdView::direct(&g).with_kernel(KERNELS[resume_kernel_i]);
            let config = EnsembleConfig::new(3, 800, seed)
                .with_prefetch(PrefetchConfig::with_threads(THREADS[write_threads_i]));
            let uninterrupted =
                mhbc_core::run_ensemble_view(write_view, r, &config).unwrap();

            let mut calls = 0;
            let mut saved = None;
            let mut sink = nth_checkpoint(&mut calls, cut, &mut saved);
            let _ = run_ensemble_view_adaptive(
                write_view,
                r,
                &config,
                EngineConfig::fixed().with_segment(150),
                Some(&mut sink),
            )
            .unwrap();
            drop(sink);
            let bytes = saved.expect("cut below the boundary count");

            let (resumed, _) = resume_ensemble(
                resume_view,
                &bytes,
                PrefetchConfig::with_threads(THREADS[resume_threads_i]),
            )
            .unwrap()
            .run();
            prop_assert_eq!(uninterrupted.bc.to_bits(), resumed.bc.to_bits());
            prop_assert_eq!(
                uninterrupted.bc_corrected.to_bits(),
                resumed.bc_corrected.to_bits()
            );
            prop_assert_eq!(uninterrupted.r_hat.to_bits(), resumed.r_hat.to_bits());
            prop_assert_eq!(uninterrupted.spd_passes, resumed.spd_passes);
            prop_assert_eq!(
                uninterrupted.acceptance_rate.to_bits(),
                resumed.acceptance_rate.to_bits()
            );
            for (a, b) in uninterrupted.per_chain.iter().zip(&resumed.per_chain) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
