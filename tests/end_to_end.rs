//! End-to-end integration tests spanning all crates: the (ε, δ) guarantee,
//! determinism, and cross-estimator agreement on nontrivial graphs.

use mhbc_core::planner::{plan_single, MuSource};
use mhbc_core::{
    optimal, JointSpaceConfig, JointSpaceSampler, SingleSpaceConfig, SingleSpaceSampler,
};
use mhbc_graph::{algo, generators};
use mhbc_spd::{exact_betweenness_of, exact_betweenness_par};
use rand::{rngs::SmallRng, SeedableRng};

/// Theorem 1 + Theorem 2 end to end: plan a budget from the Theorem 2
/// µ-bound on a balanced-separator graph, run repeatedly, and check the
/// empirical failure rate respects δ (with conservative slack: the bound
/// over-provisions).
#[test]
fn planned_epsilon_delta_coverage_on_separator_family() {
    let mut rng = SmallRng::seed_from_u64(1);
    let hs = generators::hub_separator(3, 60, 0.05, 2, &mut rng);
    let (g, hub) = (&hs.graph, hs.hub);
    let (eps, delta) = (0.06, 0.2);
    let plan = plan_single(g, hub, eps, delta, MuSource::TheoremTwo).expect("hub separates");
    let exact = exact_betweenness_of(g, hub);

    let runs = 12;
    let mut failures = 0;
    for seed in 0..runs {
        let est = SingleSpaceSampler::new(g, hub, SingleSpaceConfig::new(plan.iterations, seed))
            .expect("valid config")
            .run();
        if (est.bc - exact).abs() > eps {
            failures += 1;
        }
    }
    assert!(
        failures <= 2,
        "{failures}/{runs} runs missed eps = {eps} with planned T = {}",
        plan.iterations
    );
}

/// The full pipeline is deterministic: same seed, same graph, same result,
/// across every crate boundary.
#[test]
fn full_pipeline_determinism() {
    let build = || {
        let mut rng = SmallRng::seed_from_u64(99);
        generators::barabasi_albert(800, 3, &mut rng)
    };
    let g1 = build();
    let g2 = build();
    assert_eq!(g1.num_edges(), g2.num_edges());

    let run = |g: &mhbc_graph::CsrGraph| {
        SingleSpaceSampler::new(g, 0, SingleSpaceConfig::new(2_000, 5)).expect("valid config").run()
    };
    let (a, b) = (run(&g1), run(&g2));
    assert_eq!(a.bc, b.bc);
    assert_eq!(a.bc_corrected, b.bc_corrected);
    assert_eq!(a.spd_passes, b.spd_passes);
}

/// Theorem 3 end to end on a generated community graph: the joint sampler's
/// ratio matches exact Brandes ratios within sampling error.
#[test]
fn joint_ratios_match_exact_brandes_on_communities() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = generators::planted_partition(4, 60, 0.25, 0.01, &mut rng);
    let exact = exact_betweenness_par(&g, 0);

    // Probes: the max-degree vertex of each block (community cores).
    let probes: Vec<u32> = (0..4)
        .map(|b| {
            ((b * 60) as u32..((b + 1) * 60) as u32)
                .max_by_key(|&v| g.degree(v))
                .expect("non-empty block")
        })
        .collect();

    let est = JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(120_000, 17))
        .expect("valid probes")
        .run();

    for i in 0..probes.len() {
        for j in 0..probes.len() {
            if i == j {
                continue;
            }
            let truth = exact[probes[i] as usize] / exact[probes[j] as usize];
            let got = est.ratio(i, j);
            assert!((got - truth).abs() / truth < 0.25, "ratio({i},{j}) = {got} vs exact {truth}");
        }
    }
}

/// The corrected estimator agrees with exact BC across graph families —
/// including ones with skewed profiles where Eq 7 is visibly biased.
#[test]
fn corrected_estimator_tracks_exact_across_families() {
    let cases: Vec<(mhbc_graph::CsrGraph, u32)> = vec![
        (generators::lollipop(12, 6), 12),
        (generators::barbell(10, 3), 11),
        (generators::grid(12, 12, false), 66),
        (generators::wheel(40), 0),
    ];
    for (g, r) in cases {
        let exact = exact_betweenness_of(&g, r);
        let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(60_000, 13))
            .expect("valid config")
            .run();
        assert!(
            (est.bc_corrected - exact).abs() < 0.05_f64.max(exact * 0.15),
            "graph {g}, probe {r}: corrected {} vs exact {exact}",
            est.bc_corrected
        );
    }
}

/// Eq 7's structural bias, end to end: on a skewed profile the Eq 7
/// estimate converges *above* BC(r), by exactly the predicted gap.
#[test]
fn eq7_bias_matches_prediction() {
    let g = generators::lollipop(15, 8);
    let r = 16; // mid-path vertex: skewed dependency profile
    let profile = mhbc_spd::dependency_profile_par(&g, r, 0);
    let limit = optimal::eq7_limit(&profile);
    let exact = profile.betweenness();
    assert!(limit > exact + 0.02, "premise: visible bias");

    let est = SingleSpaceSampler::new(&g, r, SingleSpaceConfig::new(80_000, 23))
        .expect("valid config")
        .run();
    assert!(
        (est.bc - limit).abs() < 0.02,
        "Eq 7 estimate {} should sit at its limit {limit}, not at BC {exact}",
        est.bc
    );
}

/// Weighted pipeline: generators -> Dijkstra kernel -> sampler -> exact
/// weighted Brandes.
#[test]
fn weighted_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(7);
    let base = generators::grid(10, 10, false);
    let g = generators::assign_uniform_weights(&base, 1.0, 4.0, &mut rng);
    let centre = 55u32;
    let exact = exact_betweenness_par(&g, 0)[centre as usize];
    let est = SingleSpaceSampler::new(&g, centre, SingleSpaceConfig::new(30_000, 2))
        .expect("valid config")
        .run();
    assert!(
        (est.bc_corrected - exact).abs() < 0.03,
        "corrected {} vs exact {exact}",
        est.bc_corrected
    );
}

/// Largest-component preprocessing composes with the samplers.
#[test]
fn disconnected_input_pipeline() {
    let mut rng = SmallRng::seed_from_u64(11);
    let g = generators::erdos_renyi_gnp(400, 0.004, &mut rng); // likely disconnected
    let (sub, _map) = algo::largest_component(&g);
    assert!(algo::is_connected(&sub));
    if sub.num_vertices() >= 3 {
        let est = SingleSpaceSampler::new(&sub, 0, SingleSpaceConfig::new(500, 1))
            .expect("valid config")
            .run();
        assert!(est.bc.is_finite());
    }
}
