//! Tier-1 smoke test for the paper's core claim: the Metropolis–Hastings
//! estimators agree with exact Brandes betweenness on small classic graphs.
//!
//! Uses the corrected single-space estimator (unbiased; see
//! `mhbc_core::optimal`) and the joint-space ratio estimator (Theorem 3,
//! exact in the limit). Seeds are fixed, so failures are reproducible and
//! deterministic, not flaky.

use mhbc_core::{JointSpaceConfig, JointSpaceSampler, SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::{generators, CsrGraph, Vertex};
use mhbc_spd::{exact_betweenness, exact_betweenness_of};

/// Absolute tolerance for single-vertex BC estimates (BC is in [0, 1]).
const BC_TOL: f64 = 0.05;

fn assert_single_space_agrees(name: &str, g: &CsrGraph, r: Vertex, iters: u64, seed: u64) {
    let est = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(iters, seed))
        .expect("valid sampler config")
        .run();
    let exact = exact_betweenness_of(g, r);
    assert!(
        (est.bc_corrected - exact).abs() < BC_TOL,
        "{name}: corrected MH estimate {:.4} vs exact {exact:.4} at probe {r}",
        est.bc_corrected
    );
    // The Eq 7 chain average converges to eq7_limit >= BC(r); it must not
    // undershoot the exact value by more than the tolerance.
    assert!(
        est.bc > exact - BC_TOL,
        "{name}: Eq 7 estimate {:.4} undershoots exact {exact:.4}",
        est.bc
    );
}

#[test]
fn barbell_bridge_matches_exact() {
    // The canonical high-BC probe: the bridge vertex of a barbell graph.
    let g = generators::barbell(8, 1);
    assert_single_space_agrees("barbell(8,1)", &g, 16, 8_000, 11);
}

#[test]
fn star_center_and_leaf_match_exact() {
    // Star center has the maximum possible BC; leaves have exactly zero.
    let g = generators::star(20);
    assert_single_space_agrees("star(20) center", &g, 0, 4_000, 12);
    assert_single_space_agrees("star(20) leaf", &g, 5, 4_000, 13);
}

#[test]
fn grid_center_matches_exact() {
    let g = generators::grid(6, 6, false);
    // An interior vertex of the grid.
    assert_single_space_agrees("grid(6x6)", &g, 14, 12_000, 14);
}

#[test]
fn wheel_hub_matches_exact() {
    let g = generators::wheel(16);
    assert_single_space_agrees("wheel(16)", &g, 0, 6_000, 15);
}

#[test]
fn balanced_tree_root_matches_exact() {
    let g = generators::balanced_tree(2, 4);
    assert_single_space_agrees("balanced_tree(2,4)", &g, 0, 10_000, 16);
}

#[test]
fn joint_space_ratios_match_exact_on_lollipop() {
    // Lollipop: a clique with a tail; tail vertices have sharply different
    // betweenness, so their ratios are well separated.
    let g = generators::lollipop(6, 4);
    let exact = exact_betweenness(&g);
    // Probes: two tail vertices and one clique vertex with positive BC.
    let probes: Vec<Vertex> = vec![6, 8, 5];
    let est = JointSpaceSampler::new(&g, &probes, JointSpaceConfig::new(60_000, 17))
        .expect("valid probe set")
        .run();
    for i in 0..probes.len() {
        for j in 0..probes.len() {
            let truth = exact[probes[i] as usize] / exact[probes[j] as usize];
            let got = est.ratio(i, j);
            assert!(
                (got - truth).abs() < 0.15 * truth.max(1.0),
                "ratio BC({})/BC({}): MH {got:.4} vs exact {truth:.4}",
                probes[i],
                probes[j]
            );
        }
    }
}
