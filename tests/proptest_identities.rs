#![allow(clippy::needless_range_loop)]
//! Property-based tests of the paper's exact identities, spanning crates.

use mhbc_core::optimal;
use mhbc_graph::{generators, CsrGraph};
use mhbc_spd::{dependency_profile, exact_betweenness};
use proptest::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn connected_graph(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::ensure_connected(generators::erdos_renyi_gnp(n, p, &mut rng), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cauchy–Schwarz: the Eq 7 limit always dominates BC(r) (the
    /// reproduction's soundness finding, as an exact inequality).
    #[test]
    fn eq7_limit_dominates_bc(n in 5usize..30, seed in any::<u64>(), probe in 0usize..30) {
        let g = connected_graph(n, 0.2, seed);
        let r = (probe % n) as u32;
        let p = dependency_profile(&g, r);
        prop_assert!(optimal::eq7_limit(&p) >= p.betweenness() - 1e-12);
    }

    /// Detailed balance (Eq 21): for every source v,
    /// δ_v(ri)·min{1, δ_v(rj)/δ_v(ri)} = δ_v(rj)·min{1, δ_v(ri)/δ_v(rj)}.
    #[test]
    fn detailed_balance_identity(n in 5usize..25, seed in any::<u64>(), pi in 0usize..25, pj in 0usize..25) {
        let g = connected_graph(n, 0.25, seed);
        let (ri, rj) = ((pi % n) as u32, (pj % n) as u32);
        let prof_i = dependency_profile(&g, ri);
        let prof_j = dependency_profile(&g, rj);
        for v in 0..n {
            let (a, b) = (prof_i.profile[v], prof_j.profile[v]);
            let lhs = a * optimal::min_dependency_ratio(b, a);
            let rhs = b * optimal::min_dependency_ratio(a, b);
            prop_assert!((lhs - rhs).abs() < 1e-9, "v = {}: {} vs {}", v, lhs, rhs);
        }
    }

    /// Theorem 3 as an exact identity of the stationary-weighted scores:
    /// w(i|j)/w(j|i) = BC(ri)/BC(rj) whenever both are positive.
    #[test]
    fn theorem3_ratio_identity(n in 6usize..25, seed in any::<u64>()) {
        let g = connected_graph(n, 0.25, seed);
        let bc = exact_betweenness(&g);
        // Pick the two highest-BC vertices to guarantee positive scores.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| bc[b].partial_cmp(&bc[a]).expect("finite"));
        let (ri, rj) = (idx[0] as u32, idx[1] as u32);
        prop_assume!(bc[rj as usize] > 1e-12);

        let prof_i = dependency_profile(&g, ri);
        let prof_j = dependency_profile(&g, rj);
        let wij = optimal::stationary_relative_from_profiles(&prof_i, &prof_j);
        let wji = optimal::stationary_relative_from_profiles(&prof_j, &prof_i);
        let truth = bc[ri as usize] / bc[rj as usize];
        prop_assert!(((wij / wji) - truth).abs() < 1e-9, "{} vs {}", wij / wji, truth);
    }

    /// Relative scores are clamped to [0, 1] and the diagonal is exactly 1.
    #[test]
    fn relative_scores_well_formed(n in 5usize..20, seed in any::<u64>()) {
        let g = connected_graph(n, 0.3, seed);
        let probes: Vec<u32> = vec![0, (n / 2) as u32];
        let m = optimal::exact_relative_matrix(&g, &probes, 1);
        for i in 0..2 {
            prop_assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..2 {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&m[i][j]));
            }
        }
    }

    /// µ(r) is always >= 1 on positive-BC probes, and the Theorem 2 bound
    /// dominates it whenever r is a separator.
    #[test]
    fn mu_and_theorem2_bound(n in 6usize..25, seed in any::<u64>(), probe in 0usize..25) {
        let g = connected_graph(n, 0.2, seed);
        let r = (probe % n) as u32;
        let p = dependency_profile(&g, r);
        if let Some(mu) = p.mu() {
            prop_assert!(mu >= 1.0 - 1e-12);
            let rep = optimal::theorem2_report(&g, r, 0.0);
            if let Some(bound) = rep.mu_bound {
                prop_assert!(mu <= bound + 1e-9, "mu {} vs bound {}", mu, bound);
            }
        }
    }
}
