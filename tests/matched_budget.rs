//! Matched-budget comparisons between the MH sampler and the baselines —
//! the integration-level counterpart of experiment T2.

use mhbc_baselines::{BbSampler, DistanceSampler, RkSampler, UniformSourceSampler};
use mhbc_core::{SingleSpaceConfig, SingleSpaceSampler};
use mhbc_graph::generators;
use mhbc_spd::exact_betweenness_of;
use rand::{rngs::SmallRng, SeedableRng};

/// Every estimator lands near the truth when given a generous equal sample
/// budget on a balanced-separator probe (where Eq 7's bias is negligible).
#[test]
fn all_estimators_agree_on_separator_probe() {
    let mut rng = SmallRng::seed_from_u64(42);
    let hs = generators::hub_separator(2, 50, 0.1, 3, &mut rng);
    let (g, r) = (&hs.graph, hs.hub);
    let exact = exact_betweenness_of(g, r);
    let budget = 30_000u64;

    let mh = SingleSpaceSampler::new(g, r, SingleSpaceConfig::new(budget, 1)).expect("valid").run();
    let mut rng1 = SmallRng::seed_from_u64(2);
    let uni = UniformSourceSampler::new(g, r).run(budget, &mut rng1);
    let mut rng2 = SmallRng::seed_from_u64(3);
    let dist = DistanceSampler::new(g, r).run(budget, &mut rng2);
    let mut rng3 = SmallRng::seed_from_u64(4);
    let rk = RkSampler::new(g).run(budget, &mut rng3);
    let mut rng4 = SmallRng::seed_from_u64(5);
    let bb = BbSampler::new(g, r).run_fixed(budget, &mut rng4);

    for (name, got) in [
        ("mh(eq7)", mh.bc),
        ("mh(corrected)", mh.bc_corrected),
        ("uniform", uni.bc),
        ("distance", dist.bc),
        ("rk", rk.of(r)),
        ("bb", bb.bc),
    ] {
        assert!((got - exact).abs() < 0.03, "{name}: {got} vs exact {exact}");
    }
}

/// The MH sampler's oracle makes its *real* cost (SPD passes) far lower
/// than the baselines' at an equal iteration budget.
#[test]
fn mh_oracle_saves_spd_passes() {
    let mut rng = SmallRng::seed_from_u64(9);
    let g = generators::barabasi_albert(1_000, 3, &mut rng);
    let hub = (0..1_000u32).max_by_key(|&v| g.degree(v)).expect("non-empty");
    let budget = 5_000u64;

    let mh =
        SingleSpaceSampler::new(&g, hub, SingleSpaceConfig::new(budget, 1)).expect("valid").run();
    let mut rng1 = SmallRng::seed_from_u64(2);
    let uni = UniformSourceSampler::new(&g, hub).run(budget, &mut rng1);

    assert!(mh.spd_passes <= g.num_vertices() as u64);
    assert_eq!(uni.spd_passes, budget);
    assert!(
        mh.spd_passes < uni.spd_passes / 2,
        "oracle should cut passes: mh {} vs uniform {}",
        mh.spd_passes,
        uni.spd_passes
    );
}

/// bb-BFS touches far fewer edges per sample than RK's full BFS on an
/// expander-like graph (KADABRA's speedup axis).
#[test]
fn bb_bfs_cheaper_than_full_bfs_per_sample() {
    let mut rng = SmallRng::seed_from_u64(10);
    let g = generators::barabasi_albert(5_000, 4, &mut rng);
    let r = 100u32;
    let samples = 500u64;

    let mut rng1 = SmallRng::seed_from_u64(11);
    let bb = BbSampler::new(&g, r).run_fixed(samples, &mut rng1);
    let per_sample = bb.edges_touched as f64 / samples as f64;
    // A full BFS touches every edge twice (~2m endpoint scans).
    let full_bfs_cost = 2.0 * g.num_edges() as f64;
    assert!(
        per_sample < full_bfs_cost / 4.0,
        "bb-BFS per-sample edge work {per_sample} should be well under full BFS {full_bfs_cost}"
    );
}
